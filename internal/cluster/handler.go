package cluster

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stream"
)

// maxRouterBody bounds request bodies at the router — matching the
// stream transport's frame bound, so nothing the router accepts is
// unforwardable.
const maxRouterBody = 8 << 20

// errorEnvelope mirrors serve's error envelope so clients see one
// error shape whether the router or a replica produced it.
type errorEnvelope struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	RequestID string `json:"request_id,omitempty"`
}

// Handler returns the router's HTTP surface — the same endpoints as a
// single resserve, fronted by affinity routing:
//
//	POST /estimate         routed by schema over the stream pool
//	POST /estimate/batch   proxied to the schema's affinity replica
//	POST /observe          proxied to the schema's affinity replica
//	GET  /models           proxied to one healthy replica
//	POST /models           fanned out to every healthy replica
//	POST /models/rollback  fanned out to every healthy replica
//	GET  /healthz          fleet view: per-replica health + versions
//	GET  /metrics          router metrics (JSON or Prometheus)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", rt.handleEstimate)
	mux.HandleFunc("POST /estimate/batch", rt.handleProxyBySchema)
	mux.HandleFunc("POST /observe", rt.handleProxyBySchema)
	mux.HandleFunc("GET /models", rt.handleModelsGet)
	mux.HandleFunc("POST /models", rt.handleFanout)
	mux.HandleFunc("POST /models/rollback", rt.handleFanout)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return withRequestID(mux)
}

// withRequestID mirrors serve's middleware: every request carries an
// X-Request-ID (client-supplied or minted), echoed on the response
// and forwarded to replicas so one ID follows a request through the
// tier.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
			r.Header.Set("X-Request-ID", id)
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r)
	})
}

func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, rerr *routeError) {
	if rerr.retryAfter {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rerr.status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(errorEnvelope{Error: rerr.msg, Code: rerr.code, RequestID: r.Header.Get("X-Request-ID")})
}

// clientKey identifies a client for per-client admission: the
// X-Client-ID header when present, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// peekSchema extracts the routing key from a request body without a
// second full parse (stream's fast envelope walk). A body the router
// cannot parse routes by the empty schema — the replica owning that
// slot produces the canonical error.
func peekSchema(body []byte) string {
	var req stream.Request
	if err := stream.DecodeRequest(body, &req); err != nil {
		return ""
	}
	return req.Schema
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *routeError) {
	body, err := readAll(http.MaxBytesReader(w, r.Body, maxRouterBody))
	if err != nil {
		return nil, &routeError{status: http.StatusBadRequest, code: "bad_request", msg: "bad request body: " + err.Error()}
	}
	return body, nil
}

func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	release, ok := rt.admit(clientKey(r))
	if !ok {
		rt.writeError(w, r, errShed)
		return
	}
	defer release()
	body, rerr := rt.readBody(w, r)
	if rerr != nil {
		rt.writeError(w, r, rerr)
		return
	}
	schema := peekSchema(body)
	if r.URL.RawQuery != "" {
		// Explain (and any future query switch) changes the response
		// shape, so it bypasses the body-keyed cache and the stream
		// transport: proxy it to the affinity replica verbatim.
		rt.proxyRouted(w, r, schema, body)
		return
	}
	resp, rerr := rt.estimate(r.Context(), schema, body)
	if rerr != nil {
		rt.writeError(w, r, rerr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
}

// handleProxyBySchema forwards batch and observe traffic to the
// schema's affinity replica over HTTP, response copied verbatim.
func (rt *Router) handleProxyBySchema(w http.ResponseWriter, r *http.Request) {
	release, ok := rt.admit(clientKey(r))
	if !ok {
		rt.writeError(w, r, errShed)
		return
	}
	defer release()
	body, rerr := rt.readBody(w, r)
	if rerr != nil {
		rt.writeError(w, r, rerr)
		return
	}
	rt.proxyRouted(w, r, peekSchema(body), body)
}

// proxyRouted picks schema's replica (affinity, then
// version-consistent spillover), proxies the request verbatim, and
// retries one successor when the replica dies mid-request.
func (rt *Router) proxyRouted(w http.ResponseWriter, r *http.Request, schema string, body []byte) {
	var skipped map[string]bool
	for attempt := 0; attempt < 2; attempt++ {
		rp, spill := rt.pick(schema, skipped)
		if rp == nil {
			break
		}
		err := rt.proxyVerbatim(w, r, rp, body)
		if err != nil {
			rp.errors.Inc()
			rp.setDown(err)
			rt.logger.Warn("replica failed mid-request", "replica", rp.name, "error", err)
			if skipped == nil {
				skipped = make(map[string]bool, 2)
			}
			skipped[rp.name] = true
			continue
		}
		if spill {
			rt.decSpillover.Inc()
		} else {
			rt.decAffinity.Inc()
		}
		rp.requests.Inc()
		return
	}
	rt.decShed.Inc()
	rt.writeError(w, r, errNoReplica)
}

func (rt *Router) handleModelsGet(w http.ResponseWriter, r *http.Request) {
	// The fleet converges on one model set, so any healthy replica can
	// answer; prefer ring order for a stable choice.
	for _, name := range rt.ring.PickN("models", len(rt.order)) {
		rp := rt.replicas[name]
		if healthy, _ := rp.state(); !healthy {
			continue
		}
		if err := rt.proxyVerbatim(w, r, rp, nil); err != nil {
			rp.errors.Inc()
			rp.setDown(err)
			continue
		}
		rp.requests.Inc()
		return
	}
	rt.writeError(w, r, errNoReplica)
}

// handleFanout applies a model mutation (publish, rollback) to every
// healthy replica so the fleet moves together. The first replica's
// response is the client's answer; any later failure surfaces as a
// conflict naming the replicas left behind.
func (rt *Router) handleFanout(w http.ResponseWriter, r *http.Request) {
	body, rerr := rt.readBody(w, r)
	if rerr != nil {
		rt.writeError(w, r, rerr)
		return
	}
	var (
		firstStatus int
		firstBody   []byte
		applied     []string
		failed      []string
	)
	for _, name := range rt.order {
		rp := rt.replicas[name]
		if healthy, _ := rp.state(); !healthy {
			failed = append(failed, name)
			continue
		}
		status, respBody, err := rt.forwardRaw(r, rp, body)
		if err != nil {
			rp.errors.Inc()
			rp.setDown(err)
			failed = append(failed, name)
			continue
		}
		rp.requests.Inc()
		if firstBody == nil {
			firstStatus, firstBody = status, respBody
		}
		if status < 300 {
			applied = append(applied, name)
		} else {
			failed = append(failed, name)
		}
	}
	if firstBody == nil {
		rt.writeError(w, r, errNoReplica)
		return
	}
	if len(failed) > 0 && len(applied) > 0 {
		rt.logger.Warn("partial model fanout", "applied", applied, "failed", failed)
		rt.writeError(w, r, &routeError{
			status: http.StatusConflict, code: "conflict",
			msg: "model change applied to " + strconv.Itoa(len(applied)) + "/" +
				strconv.Itoa(len(applied)+len(failed)) + " replicas; fleet inconsistent until next poll",
		})
		return
	}
	// Refresh version tokens immediately so the next requests route
	// (and cache) under the new model set instead of waiting out a
	// poll interval.
	rt.PollNow()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(firstStatus)
	w.Write(firstBody)
}

// fleetHealth is the router's GET /healthz body: the per-replica view
// the poller maintains plus the fleet-wide consistency verdict.
type fleetHealth struct {
	Status     string          `json:"status"` // ok | degraded | down
	Consistent bool            `json:"consistent"`
	Replicas   []replicaStatus `json:"replicas"`
	Build      obs.Build       `json:"build"`
}

type replicaStatus struct {
	Name          string `json:"name"`
	Healthy       bool   `json:"healthy"`
	StoreChecksum string `json:"store_checksum,omitempty"`
	StreamAddr    string `json:"stream_addr,omitempty"`
	Error         string `json:"error,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fh := fleetHealth{Consistent: rt.FleetConsistent(), Build: obs.BuildInfo()}
	healthyN := 0
	for _, name := range rt.order {
		rp := rt.replicas[name]
		rp.mu.Lock()
		st := replicaStatus{
			Name:          rp.name,
			Healthy:       rp.healthy,
			StoreChecksum: rp.token,
			StreamAddr:    rp.streamAddr,
		}
		if rp.lastErr != nil {
			st.Error = rp.lastErr.Error()
		}
		rp.mu.Unlock()
		if st.Healthy {
			healthyN++
		}
		fh.Replicas = append(fh.Replicas, st)
	}
	status := http.StatusOK
	switch {
	case healthyN == 0:
		fh.Status = "down"
		status = http.StatusServiceUnavailable
	case healthyN < len(rt.order) || !fh.Consistent:
		fh.Status = "degraded"
	default:
		fh.Status = "ok"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(fh)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if serve.WantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.TextContentType)
		rt.obsReg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(rt.Metrics())
}
