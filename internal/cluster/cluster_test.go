package cluster_test

// Integration tests for the distributed serving tier, in-process: a
// router over real serve.Service replicas with real stream listeners.
// They pin the tier's contracts — responses byte-identical to
// single-node across every transport, schema affinity, the
// version-keyed router cache never serving a stale model, graceful
// degradation when a replica dies, and fleet convergence to one
// retrained model through the shared store.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/workload"
)

var (
	setupOnce sync.Once
	cpuEst    *core.Estimator
	ioEst     *core.Estimator
	testPlans []*plan.Plan
)

func setup(t testing.TB) {
	t.Helper()
	setupOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.N = 64
		cfg.Seed = 7
		qs := workload.GenTPCH(cfg)
		eng := engine.New(nil)
		plans := make([]*plan.Plan, len(qs))
		for i, q := range qs {
			eng.Run(q.Plan)
			plans[i] = q.Plan
		}
		cut := len(plans) * 3 / 4
		ccfg := core.DefaultConfig()
		ccfg.Mart.Iterations = 40
		var err error
		cpuEst, err = core.Train(plans[:cut], plan.CPUTime, nil, ccfg)
		if err != nil {
			panic(err)
		}
		ioEst, err = core.Train(plans[:cut], plan.LogicalIO, nil, ccfg)
		if err != nil {
			panic(err)
		}
		testPlans = plans[cut:]
	})
}

// testReplica is one in-process resserve: a service with both
// estimators on the wildcard schema, a stream listener, and an HTTP
// listener — the same surfaces a real replica process exposes.
type testReplica struct {
	svc *serve.Service
	ss  *stream.Server
	hs  *httptest.Server
}

func newTestReplica(t testing.TB) *testReplica {
	t.Helper()
	setup(t)
	reg := serve.NewRegistry()
	reg.Publish("", cpuEst)
	reg.Publish("", ioEst)
	return newTestReplicaWith(t, reg)
}

// newTestReplicaWith builds a replica over an existing registry.
// Replicas sharing one registry carry bit-identical model metadata
// (version, loaded_at) — the in-process stand-in for a fleet restored
// from the same store snapshot, which is what makes byte-identity
// comparisons across replicas meaningful.
func newTestReplicaWith(t testing.TB, reg *serve.Registry) *testReplica {
	t.Helper()
	setup(t)
	svc := serve.New(serve.Options{Registry: reg})
	ss, err := stream.Start("127.0.0.1:0", stream.Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetStreamAddr(ss.Addr())
	hs := httptest.NewServer(svc.Handler())
	tr := &testReplica{svc: svc, ss: ss, hs: hs}
	t.Cleanup(tr.kill)
	return tr
}

// kill tears the replica down abruptly — the process-death stand-in.
// Idempotent.
func (tr *testReplica) kill() {
	tr.hs.Close()
	tr.ss.Close()
	tr.svc.Close()
}

func newRouter(t testing.TB, reps []*testReplica, mut func(*cluster.Options)) (*cluster.Router, *httptest.Server) {
	t.Helper()
	opts := cluster.Options{
		PollInterval: time.Hour, // tests poll explicitly via PollNow
		DialTimeout:  2 * time.Second,
	}
	for _, r := range reps {
		opts.Replicas = append(opts.Replicas, r.hs.URL)
	}
	if mut != nil {
		mut(&opts)
	}
	rt, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(hs.Close)
	return rt, hs
}

func estimateBody(t testing.TB, schema string, p *plan.Plan, resources ...string) []byte {
	t.Helper()
	pj, err := plan.EncodeJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	req := stream.Request{Schema: schema, Plan: pj}
	if len(resources) == 1 {
		req.Resource = resources[0]
	} else if len(resources) > 1 {
		req.Resources = resources
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t testing.TB, url, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func postOK(t testing.TB, url, path string, body []byte) []byte {
	t.Helper()
	status, out := post(t, url, path, body)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, status, out)
	}
	return out
}

// TestRouterByteIdenticalToSingleNode pins the tier's core contract:
// a client moved from one resserve to the router sees byte-identical
// responses — single-resource, multi-resource, batch, and the
// streaming transport. Both sides are warmed first (cold cache
// counters legitimately differ between a first and second serving of
// the same plan) and the router cache is disabled so the forwarding
// path itself is what's measured.
func TestRouterByteIdenticalToSingleNode(t *testing.T) {
	setup(t)
	// One registry behind every node: model metadata (version,
	// loaded_at) embedded in responses is then identical, as it is for
	// a real fleet restored from one store snapshot.
	reg := serve.NewRegistry()
	reg.Publish("", cpuEst)
	reg.Publish("", ioEst)
	single := newTestReplicaWith(t, reg)
	fleet := []*testReplica{newTestReplicaWith(t, reg), newTestReplicaWith(t, reg)}
	rt, rhs := newRouter(t, fleet, func(o *cluster.Options) { o.CacheEntries = -1 })

	schemas := []string{"", "alpha", "beta", "gamma"}
	type tc struct {
		name string
		body []byte
	}
	var cases []tc
	for i, p := range testPlans[:4] {
		schema := schemas[i%len(schemas)]
		cases = append(cases,
			tc{fmt.Sprintf("cpu/%s/%d", schema, i), estimateBody(t, schema, p, "cpu")},
			tc{fmt.Sprintf("multi/%s/%d", schema, i), estimateBody(t, schema, p, "cpu", "io")},
		)
	}
	// Warm both sides, then compare second servings.
	for _, c := range cases {
		postOK(t, single.hs.URL, "/estimate", c.body)
		postOK(t, rhs.URL, "/estimate", c.body)
	}
	for _, c := range cases {
		want := postOK(t, single.hs.URL, "/estimate", c.body)
		got := postOK(t, rhs.URL, "/estimate", c.body)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: router response differs from single-node\nsingle: %s\nrouter: %s", c.name, want, got)
		}
	}

	// Batch: proxied over HTTP, still byte-identical.
	var plansJSON []json.RawMessage
	for _, p := range testPlans[:4] {
		pj, err := plan.EncodeJSON(p)
		if err != nil {
			t.Fatal(err)
		}
		plansJSON = append(plansJSON, pj)
	}
	batchBody, err := json.Marshal(map[string]any{"schema": "alpha", "resource": "cpu", "plans": plansJSON})
	if err != nil {
		t.Fatal(err)
	}
	postOK(t, single.hs.URL, "/estimate/batch", batchBody)
	postOK(t, rhs.URL, "/estimate/batch", batchBody)
	wantBatch := postOK(t, single.hs.URL, "/estimate/batch", batchBody)
	gotBatch := postOK(t, rhs.URL, "/estimate/batch", batchBody)
	if !bytes.Equal(wantBatch, gotBatch) {
		t.Errorf("batch response differs from single-node\nsingle: %s\nrouter: %s", wantBatch, gotBatch)
	}

	// Streaming surface: the router's framed listener answers with the
	// same bytes as single-node HTTP.
	addr, err := rt.StartStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := stream.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, c := range cases {
		want := postOK(t, single.hs.URL, "/estimate", c.body)
		got, err := cl.EstimateBytes(context.Background(), c.body)
		if err != nil {
			t.Fatalf("%s: stream estimate: %v", c.name, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: stream response differs from single-node HTTP\nhttp:   %s\nstream: %s", c.name, want, got)
		}
	}

	// Explain is proxied, not streamed; it too must match single-node.
	explainBody := cases[0].body
	wantExp := postOK(t, single.hs.URL, "/estimate?explain=1", explainBody)
	gotExp := postOK(t, rhs.URL, "/estimate?explain=1", explainBody)
	if !bytes.Equal(wantExp, gotExp) {
		t.Errorf("explain response differs from single-node")
	}
}

// TestRouterSchemaAffinity pins placement: every request for one
// schema lands on the same replica (no spillover while the fleet is
// healthy), so per-schema working sets stay hot.
func TestRouterSchemaAffinity(t *testing.T) {
	fleet := []*testReplica{newTestReplica(t), newTestReplica(t), newTestReplica(t)}
	rt, rhs := newRouter(t, fleet, func(o *cluster.Options) { o.CacheEntries = -1 })

	const perSchema = 5
	for s := 0; s < 8; s++ {
		schema := fmt.Sprintf("w%03d", s)
		body := estimateBody(t, schema, testPlans[s%len(testPlans)], "cpu")
		before := replicaRequests(rt)
		for i := 0; i < perSchema; i++ {
			postOK(t, rhs.URL, "/estimate", body)
		}
		after := replicaRequests(rt)
		served := 0
		for name, n := range after {
			if delta := n - before[name]; delta > 0 {
				served++
				if delta != perSchema {
					t.Errorf("schema %s: replica %s served %d/%d requests", schema, name, delta, perSchema)
				}
			}
		}
		if served != 1 {
			t.Errorf("schema %s: %d replicas served it, want exactly 1", schema, served)
		}
	}
	m := rt.Metrics()
	if m.Decisions.Spillover != 0 || m.Decisions.Shed != 0 {
		t.Errorf("healthy fleet made %d spillover / %d shed decisions, want 0/0", m.Decisions.Spillover, m.Decisions.Shed)
	}
	if m.Decisions.Affinity == 0 {
		t.Error("no affinity decisions recorded")
	}
}

func replicaRequests(rt *cluster.Router) map[string]uint64 {
	out := make(map[string]uint64)
	for _, r := range rt.Metrics().Replicas {
		out[r.Name] = r.Requests
	}
	return out
}

// TestRouterCacheNeverServesStaleModel pins the router cache's
// version-token guarantee: a repeat request is served from the router
// cache, but after the fleet publishes a new model version the entry
// is dead — the next request reaches the replica and reflects the new
// version.
func TestRouterCacheNeverServesStaleModel(t *testing.T) {
	rep := newTestReplica(t)
	rt, rhs := newRouter(t, []*testReplica{rep}, nil)

	body := estimateBody(t, "tpch", testPlans[0], "cpu")
	first := postOK(t, rhs.URL, "/estimate", body)
	second := postOK(t, rhs.URL, "/estimate", body)
	if !bytes.Equal(first, second) {
		t.Fatal("cached response differs from original")
	}
	m := rt.Metrics()
	if m.Cache.Hits != 1 {
		t.Fatalf("cache hits = %d after a repeat request, want 1", m.Cache.Hits)
	}

	// Roll the model: republish bumps the version, which changes the
	// replica's version vector and thus the router's token.
	rep.svc.Registry().Publish("", cpuEst)
	rt.PollNow()
	third := postOK(t, rhs.URL, "/estimate", body)
	if m2 := rt.Metrics(); m2.Cache.Hits != 1 {
		t.Fatalf("cache served a stale entry after model roll (hits %d, want still 1)", m2.Cache.Hits)
	}
	type modelResp struct {
		Model struct {
			Version uint64 `json:"version"`
		} `json:"model"`
	}
	var resp, respOld modelResp
	if err := json.Unmarshal(third, &resp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(first, &respOld); err != nil {
		t.Fatal(err)
	}
	if resp.Model.Version <= respOld.Model.Version {
		t.Fatalf("post-roll response still carries model v%d (pre-roll v%d)",
			resp.Model.Version, respOld.Model.Version)
	}
}

// TestRouterKillReplicaDegradesGracefully pins failover: when a
// replica dies, its schemas spill to the survivor and clients keep
// getting answers — no errors once routing state catches up.
func TestRouterKillReplicaDegradesGracefully(t *testing.T) {
	fleet := []*testReplica{newTestReplica(t), newTestReplica(t)}
	rt, rhs := newRouter(t, fleet, func(o *cluster.Options) {
		o.CacheEntries = -1
		o.DialTimeout = 500 * time.Millisecond
	})

	// Cover both replicas with a spread of schemas.
	bodies := make([][]byte, 8)
	for s := range bodies {
		bodies[s] = estimateBody(t, fmt.Sprintf("w%03d", s), testPlans[s%len(testPlans)], "cpu")
		postOK(t, rhs.URL, "/estimate", bodies[s])
	}

	fleet[1].kill()
	rt.PollNow()

	for s, body := range bodies {
		status, out := post(t, rhs.URL, "/estimate", body)
		if status != http.StatusOK {
			t.Errorf("schema w%03d after replica kill: status %d: %s", s, status, out)
		}
	}
	m := rt.Metrics()
	if m.Decisions.Spillover == 0 {
		t.Error("no spillover decisions after killing a replica that owned schemas")
	}
	healthy := 0
	for _, r := range m.Replicas {
		if r.Healthy {
			healthy++
		}
	}
	if healthy != 1 {
		t.Errorf("%d healthy replicas after kill, want 1", healthy)
	}

	// Fleet health reflects the degradation.
	resp, err := http.Get(rhs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var fh struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fh); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fh.Status != "degraded" {
		t.Errorf("fleet status %q after kill, want degraded", fh.Status)
	}
}

// TestRouterMetricsSurfaces pins both metric renderings: the JSON
// snapshot and the Prometheus exposition carrying the resrouter_*
// families.
func TestRouterMetricsSurfaces(t *testing.T) {
	rep := newTestReplica(t)
	_, rhs := newRouter(t, []*testReplica{rep}, nil)
	postOK(t, rhs.URL, "/estimate", estimateBody(t, "tpch", testPlans[0], "cpu"))

	var m cluster.Metrics
	resp, err := http.Get(rhs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(m.Replicas) != 1 || m.Replicas[0].Requests == 0 {
		t.Fatalf("JSON metrics missing replica counters: %+v", m)
	}
	if !m.FleetConsistent {
		t.Error("single-replica fleet reported inconsistent")
	}

	req, _ := http.NewRequest(http.MethodGet, rhs.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	for _, family := range []string{
		"resrouter_replica_requests_total",
		"resrouter_replica_healthy",
		"resrouter_routing_decisions_total",
		"resrouter_cache_hit_ratio",
	} {
		if !strings.Contains(string(text), family) {
			t.Errorf("Prometheus exposition missing %s", family)
		}
	}
}

// TestFleetRetrainConvergence pins the distributed feedback loop: a
// forwarding replica logs observations locally (no retrainer of its
// own) and ships the segments to the designated retrainer; drift
// triggers a retrain there; the retrained model lands in the shared
// store; and a follower replica syncing from the store converges to
// the retrainer's exact version vector.
func TestFleetRetrainConvergence(t *testing.T) {
	setup(t)
	storeDir := t.TempDir()

	// Retrainer: store-attached registry, serve.Service with the
	// feedback loop, publishing retrains into the store.
	st1, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	regR := serve.NewRegistry()
	regR.AttachStore(st1, nil)
	regR.Publish("tpch", cpuEst) // stale model, snapshot v1
	loop, err := feedback.New(feedback.Options{
		Dir:               t.TempDir(),
		Publisher:         regR,
		WindowSize:        96,
		MinWindow:         32,
		CheckEvery:        8,
		MinObservations:   64,
		RetrainIterations: 50,
		MaxHoldoutError:   1.0,
		DriftThreshold:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	retrainerSvc := serve.New(serve.Options{Registry: regR, Feedback: loop})
	defer retrainerSvc.Close()
	retrainerHS := httptest.NewServer(retrainerSvc.Handler())
	defer retrainerHS.Close()

	// Forwarding replica: observation log only — Publisher deliberately
	// nil, so this replica never retrains on its own.
	obsDir := t.TempDir()
	rloop, err := feedback.New(feedback.Options{Dir: obsDir})
	if err != nil {
		t.Fatal(err)
	}
	defer rloop.Close()
	fw, err := cluster.NewForwarder(cluster.ForwarderOptions{
		Dir:      obsDir,
		Target:   retrainerHS.URL,
		Interval: time.Hour, // tests forward explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()

	// A drifted regime: fresh executed plans whose CPU actuals are 4x
	// what the stale model was trained on.
	cfg := workload.DefaultConfig()
	cfg.N = 120
	cfg.Seed = 42
	qs := workload.GenTPCH(cfg)
	eng := engine.New(nil)
	for _, q := range qs {
		eng.Run(q.Plan)
		q.Plan.Walk(func(n *plan.Node) { n.Actual.CPU *= 4 })
		if err := rloop.Observe(&feedback.Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: q.Plan}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rloop.Flush(); err != nil {
		t.Fatal(err)
	}

	n, err := fw.ForwardNow()
	if err != nil {
		t.Fatal(err)
	}
	if n != cfg.N {
		t.Fatalf("forwarded %d observations, want %d", n, cfg.N)
	}
	// Forwarding is idempotent per byte: a second pass with no new
	// segments ships nothing.
	if n2, _ := fw.ForwardNow(); n2 != 0 {
		t.Fatalf("second forward pass re-shipped %d observations", n2)
	}

	loop.Quiesce()
	vecR := regR.VersionVector()
	if len(vecR) != 1 || vecR[0].Snapshot < 2 {
		t.Fatalf("retrainer did not publish a retrained snapshot: %+v", vecR)
	}

	// Follower: separate store handle on the same directory, read-only
	// sync. It must converge to the retrainer's exact version vector.
	st2, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	regF := serve.NewRegistry()
	regF.AttachStore(st2, nil)
	if _, err := regF.SyncFromStore(); err != nil {
		t.Fatal(err)
	}
	sumR := serve.VersionChecksum(regR.VersionVector())
	sumF := serve.VersionChecksum(regF.VersionVector())
	if sumR != sumF {
		t.Fatalf("follower did not converge:\nretrainer %s %+v\nfollower  %s %+v",
			sumR, regR.VersionVector(), sumF, regF.VersionVector())
	}
	// A later sync with nothing new publishes nothing.
	if infos, _ := regF.SyncFromStore(); len(infos) != 0 {
		t.Fatalf("idle sync republished %d models", len(infos))
	}
}
