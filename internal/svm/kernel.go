// Package svm implements ε-support-vector regression with the kernel
// functions the paper evaluates through WEKA's SMOreg: PolyKernel,
// NormalizedPolyKernel, RBFKernel and Puk (§7, alternative technique 5).
//
// The dual is solved without an explicit bias term by absorbing the
// offset into the kernel (K' = K + 1), which removes the equality
// constraint and lets plain coordinate descent solve the box-constrained
// QP exactly — equivalent hypothesis space, far fewer moving parts than
// full SMO bookkeeping.
package svm

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Kernel computes k(a, b) on standardized feature vectors.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// PolyKernel is (a·b + 1)^degree — WEKA's PolyKernel.
type PolyKernel struct{ Degree float64 }

// Eval implements Kernel.
func (k PolyKernel) Eval(a, b []float64) float64 {
	return math.Pow(stats.Dot(a, b)+1, k.Degree)
}

// Name implements Kernel.
func (k PolyKernel) Name() string { return fmt.Sprintf("PolyKernel(d=%g)", k.Degree) }

// NormalizedPolyKernel is poly(a,b) / sqrt(poly(a,a) poly(b,b)).
type NormalizedPolyKernel struct{ Degree float64 }

// Eval implements Kernel.
func (k NormalizedPolyKernel) Eval(a, b []float64) float64 {
	p := PolyKernel{Degree: k.Degree}
	den := math.Sqrt(p.Eval(a, a) * p.Eval(b, b))
	if den == 0 {
		return 0
	}
	return p.Eval(a, b) / den
}

// Name implements Kernel.
func (k NormalizedPolyKernel) Name() string {
	return fmt.Sprintf("NormalizedPolyKernel(d=%g)", k.Degree)
}

// RBFKernel is exp(-gamma ||a-b||²).
type RBFKernel struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return fmt.Sprintf("RBFKernel(g=%g)", k.Gamma) }

// Puk is the Pearson VII universal kernel of Üstün et al., as shipped in
// WEKA: (1 + (2·sqrt(2^(1/omega)-1)·||a-b||/sigma)²)^-omega.
type Puk struct {
	Omega float64
	Sigma float64
}

// Eval implements Kernel.
func (k Puk) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	c := 2 * math.Sqrt(math.Pow(2, 1/k.Omega)-1) / k.Sigma
	return math.Pow(1+c*c*d2, -k.Omega)
}

// Name implements Kernel.
func (k Puk) Name() string { return fmt.Sprintf("Puk(o=%g,s=%g)", k.Omega, k.Sigma) }
