package svm

import (
	"errors"
	"math"
)

// Config controls ε-SVR training.
type Config struct {
	Kernel  Kernel
	C       float64 // box constraint on |β_i|
	Epsilon float64 // insensitive-loss width (in standardized-target units)
	Iters   int     // coordinate-descent sweeps
	// MaxTrain caps the number of training rows (kernel methods are
	// quadratic in rows); extra rows are dropped deterministically by
	// stride subsampling. 0 = no cap.
	MaxTrain int
}

// DefaultConfig returns a reasonable setup; experiments override the
// kernel per the paper's per-section best choice.
func DefaultConfig() Config {
	return Config{Kernel: PolyKernel{Degree: 1}, C: 10, Epsilon: 0.05, Iters: 40, MaxTrain: 1200}
}

// Model is a trained SVR: f(x) = Σ β_i (K(x_i, x) + 1), on standardized
// features and target.
type Model struct {
	kernel Kernel
	sv     [][]float64 // standardized support vectors (β != 0)
	beta   []float64
	// feature/target standardization parameters
	mean, scale []float64
	yMean, yStd float64
}

// Train fits an ε-SVR by exact coordinate descent on the bias-absorbed
// dual. Training is deterministic.
func Train(x [][]float64, y []float64, cfg Config) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("svm: empty or mismatched training data")
	}
	if cfg.Kernel == nil {
		return nil, errors.New("svm: nil kernel")
	}
	if cfg.MaxTrain > 0 && len(x) > cfg.MaxTrain {
		stride := float64(len(x)) / float64(cfg.MaxTrain)
		var xs [][]float64
		var ys []float64
		for i := 0; i < cfg.MaxTrain; i++ {
			j := int(float64(i) * stride)
			xs = append(xs, x[j])
			ys = append(ys, y[j])
		}
		x, y = xs, ys
	}
	n := len(x)
	k := len(x[0])

	m := &Model{kernel: cfg.Kernel, mean: make([]float64, k), scale: make([]float64, k)}
	// Standardize features (SVMs require normalized inputs — one of the
	// MART advantages the paper calls out is not needing this).
	for f := 0; f < k; f++ {
		var s float64
		for i := range x {
			s += x[i][f]
		}
		mu := s / float64(n)
		var v float64
		for i := range x {
			d := x[i][f] - mu
			v += d * d
		}
		sd := math.Sqrt(v / float64(n))
		if sd < 1e-12 {
			sd = 1
		}
		m.mean[f], m.scale[f] = mu, sd
	}
	xs := make([][]float64, n)
	for i := range x {
		r := make([]float64, k)
		for f := 0; f < k; f++ {
			r[f] = (x[i][f] - m.mean[f]) / m.scale[f]
		}
		xs[i] = r
	}
	// Standardize targets.
	var ys float64
	for _, v := range y {
		ys += v
	}
	m.yMean = ys / float64(n)
	var yv float64
	for _, v := range y {
		d := v - m.yMean
		yv += d * d
	}
	m.yStd = math.Sqrt(yv / float64(n))
	if m.yStd < 1e-12 {
		m.yStd = 1
	}
	t := make([]float64, n)
	for i, v := range y {
		t[i] = (v - m.yMean) / m.yStd
	}

	// Gram matrix with absorbed bias.
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := cfg.Kernel.Eval(xs[i], xs[j]) + 1
			gram[i][j] = v
			gram[j][i] = v
		}
	}

	// Coordinate descent on
	//   min_β ½ βᵀKβ − βᵀt + ε‖β‖₁  s.t. |β_i| ≤ C.
	// The i-th coordinate optimum given the others is a soft-thresholded
	// Newton step clipped to the box.
	beta := make([]float64, n)
	f := make([]float64, n) // f = K β
	for sweep := 0; sweep < max(cfg.Iters, 1); sweep++ {
		var maxDelta float64
		for i := 0; i < n; i++ {
			kii := gram[i][i]
			if kii <= 0 {
				continue
			}
			// Residual excluding i's own contribution.
			r := t[i] - (f[i] - beta[i]*kii)
			var nb float64
			switch {
			case r > cfg.Epsilon:
				nb = (r - cfg.Epsilon) / kii
			case r < -cfg.Epsilon:
				nb = (r + cfg.Epsilon) / kii
			default:
				nb = 0
			}
			if nb > cfg.C {
				nb = cfg.C
			}
			if nb < -cfg.C {
				nb = -cfg.C
			}
			d := nb - beta[i]
			if d == 0 {
				continue
			}
			beta[i] = nb
			row := gram[i]
			for j := 0; j < n; j++ {
				f[j] += d * row[j]
			}
			if ad := math.Abs(d); ad > maxDelta {
				maxDelta = ad
			}
		}
		if maxDelta < 1e-7 {
			break
		}
	}

	for i, b := range beta {
		if b != 0 {
			m.sv = append(m.sv, xs[i])
			m.beta = append(m.beta, b)
		}
	}
	return m, nil
}

// Predict evaluates the SVR on a raw (unstandardized) feature vector.
func (m *Model) Predict(x []float64) float64 {
	z := make([]float64, len(x))
	for f := range x {
		z[f] = (x[f] - m.mean[f]) / m.scale[f]
	}
	var s float64
	for i, sv := range m.sv {
		s += m.beta[i] * (m.kernel.Eval(sv, z) + 1)
	}
	return s*m.yStd + m.yMean
}

// NumSV returns the number of support vectors.
func (m *Model) NumSV() int { return len(m.sv) }
