package svm

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func gen(n int, seed uint64, fn func([]float64) float64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := []float64{rng.Range(0, 10), rng.Range(0, 5)}
		xs = append(xs, x)
		ys = append(ys, fn(x))
	}
	return xs, ys
}

func relErr(m *Model, xs [][]float64, ys []float64) float64 {
	var s float64
	for i := range xs {
		s += math.Abs(m.Predict(xs[i])-ys[i]) / math.Max(math.Abs(ys[i]), 1)
	}
	return s / float64(len(xs))
}

func TestLinearKernelFitsLine(t *testing.T) {
	xs, ys := gen(300, 1, func(x []float64) float64 { return 3*x[0] - 2*x[1] + 5 })
	cfg := DefaultConfig()
	m, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(m, xs, ys); e > 0.08 {
		t.Fatalf("linear-kernel training error %v", e)
	}
}

func TestPolyKernelFitsQuadratic(t *testing.T) {
	xs, ys := gen(300, 2, func(x []float64) float64 { return x[0]*x[0] + x[1] })
	cfg := DefaultConfig()
	cfg.Kernel = PolyKernel{Degree: 2}
	cfg.C = 50
	cfg.Epsilon = 0.01
	cfg.Iters = 80
	m, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(m, xs, ys); e > 0.08 {
		t.Fatalf("poly-2 training error %v", e)
	}
}

func TestRBFKernelFitsNonlinear(t *testing.T) {
	xs, ys := gen(400, 3, func(x []float64) float64 {
		return 10*math.Sin(x[0]) + x[1]*x[1]
	})
	cfg := DefaultConfig()
	cfg.Kernel = RBFKernel{Gamma: 0.5}
	cfg.C = 50
	cfg.Iters = 80
	m, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// RBF is a universal approximator; in-sample error should be small.
	var mse float64
	for i := range xs {
		d := m.Predict(xs[i]) - ys[i]
		mse += d * d
	}
	mse /= float64(len(xs))
	if mse > 2 {
		t.Fatalf("RBF training MSE %v too high", mse)
	}
}

func TestAllKernelsTrainAndPredictFinite(t *testing.T) {
	xs, ys := gen(200, 4, func(x []float64) float64 { return 2*x[0] + x[1] })
	kernels := []Kernel{
		PolyKernel{Degree: 1},
		PolyKernel{Degree: 3},
		NormalizedPolyKernel{Degree: 2},
		RBFKernel{Gamma: 0.1},
		Puk{Omega: 1, Sigma: 1},
	}
	for _, k := range kernels {
		cfg := DefaultConfig()
		cfg.Kernel = k
		m, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		p := m.Predict([]float64{5, 2.5})
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("%s: prediction %v", k.Name(), p)
		}
		if k.Name() == "" {
			t.Fatal("kernel has empty name")
		}
	}
}

func TestKernelProperties(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, -1}
	// Symmetry.
	ks := []Kernel{PolyKernel{Degree: 2}, NormalizedPolyKernel{Degree: 2},
		RBFKernel{Gamma: 0.3}, Puk{Omega: 1, Sigma: 2}}
	for _, k := range ks {
		if math.Abs(k.Eval(a, b)-k.Eval(b, a)) > 1e-12 {
			t.Fatalf("%s not symmetric", k.Name())
		}
	}
	// Normalized kernels are 1 on the diagonal.
	if v := (NormalizedPolyKernel{Degree: 3}).Eval(a, a); math.Abs(v-1) > 1e-12 {
		t.Fatalf("normalized poly diagonal = %v", v)
	}
	if v := (RBFKernel{Gamma: 1}).Eval(a, a); math.Abs(v-1) > 1e-12 {
		t.Fatalf("RBF diagonal = %v", v)
	}
	if v := (Puk{Omega: 1, Sigma: 1}).Eval(a, a); math.Abs(v-1) > 1e-12 {
		t.Fatalf("Puk diagonal = %v", v)
	}
}

func TestMaxTrainSubsampling(t *testing.T) {
	xs, ys := gen(500, 5, func(x []float64) float64 { return x[0] })
	cfg := DefaultConfig()
	cfg.MaxTrain = 100
	m, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSV() > 100 {
		t.Fatalf("subsampling ignored: %d SVs", m.NumSV())
	}
	if e := relErr(m, xs, ys); e > 0.1 {
		t.Fatalf("subsampled model error %v", e)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty data accepted")
	}
	cfg := DefaultConfig()
	cfg.Kernel = nil
	if _, err := Train([][]float64{{1}}, []float64{1}, cfg); err == nil {
		t.Fatal("nil kernel accepted")
	}
}

func TestEpsilonSparsity(t *testing.T) {
	// With a large epsilon tube most residuals are ignored -> few SVs.
	xs, ys := gen(200, 7, func(x []float64) float64 { return x[0] })
	tight := DefaultConfig()
	tight.Epsilon = 0.001
	loose := DefaultConfig()
	loose.Epsilon = 0.5
	mt, _ := Train(xs, ys, tight)
	ml, _ := Train(xs, ys, loose)
	if ml.NumSV() >= mt.NumSV() {
		t.Fatalf("larger epsilon should give sparser model: %d vs %d", ml.NumSV(), mt.NumSV())
	}
}

func TestConstantTarget(t *testing.T) {
	xs, _ := gen(50, 9, func([]float64) float64 { return 0 })
	ys := make([]float64, 50)
	for i := range ys {
		ys[i] = 7
	}
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(xs[0]); math.Abs(got-7) > 0.5 {
		t.Fatalf("constant prediction = %v", got)
	}
}
