// Package sched implements the two applications the paper motivates
// resource estimation with (§1): admission control — deciding before
// execution whether a query fits the available resources — and
// pipeline-granularity scheduling, which exploits that pipelines of one
// query never execute concurrently (§5.2) and therefore never compete.
//
// The package is estimation-agnostic: it consumes predicted costs and
// can be evaluated afterwards against actual costs.
package sched

import (
	"errors"
	"fmt"
	"sort"
)

// AdmissionController tracks a resource budget and admits work whose
// predicted consumption fits the remaining capacity, with a safety
// factor applied to predictions (estimation is never exact; the paper's
// ratio-error buckets quantify by how much).
type AdmissionController struct {
	capacity float64
	safety   float64
	used     float64
	admitted map[string]float64
}

// NewAdmissionController returns a controller over the given capacity.
// safety >= 1 inflates predictions before the admission check (e.g. 1.5
// guards against all queries in the paper's R <= 1.5 bucket).
func NewAdmissionController(capacity, safety float64) (*AdmissionController, error) {
	if capacity <= 0 {
		return nil, errors.New("sched: non-positive capacity")
	}
	if safety < 1 {
		safety = 1
	}
	return &AdmissionController{
		capacity: capacity,
		safety:   safety,
		admitted: map[string]float64{},
	}, nil
}

// TryAdmit admits the query if safety·predicted fits the remaining
// capacity, reserving it until Release. IDs must be unique among
// currently admitted queries.
func (a *AdmissionController) TryAdmit(id string, predicted float64) (bool, error) {
	if _, dup := a.admitted[id]; dup {
		return false, fmt.Errorf("sched: %q already admitted", id)
	}
	if predicted < 0 {
		return false, fmt.Errorf("sched: negative prediction for %q", id)
	}
	need := predicted * a.safety
	if a.used+need > a.capacity {
		return false, nil
	}
	a.used += need
	a.admitted[id] = need
	return true, nil
}

// Release returns an admitted query's reservation to the pool.
func (a *AdmissionController) Release(id string) error {
	need, ok := a.admitted[id]
	if !ok {
		return fmt.Errorf("sched: %q not admitted", id)
	}
	a.used -= need
	delete(a.admitted, id)
	return nil
}

// Used returns the currently reserved capacity.
func (a *AdmissionController) Used() float64 { return a.used }

// Free returns the remaining capacity.
func (a *AdmissionController) Free() float64 { return a.capacity - a.used }

// Admitted returns the number of currently admitted queries.
func (a *AdmissionController) Admitted() int { return len(a.admitted) }

// Chain is one query's pipelines in execution order: pipeline i+1 may
// only start after pipeline i finishes (they are separated by blocking
// operators), while pipelines of different chains may run concurrently.
type Chain struct {
	ID    string
	Costs []float64 // predicted cost per pipeline, execution order
}

// Total returns the chain's total predicted cost.
func (c Chain) Total() float64 {
	var s float64
	for _, v := range c.Costs {
		s += v
	}
	return s
}

// Assignment records where and when one pipeline was scheduled.
type Assignment struct {
	Chain    string
	Pipeline int
	Worker   int
	Start    float64
	End      float64
}

// Schedule is the result of scheduling a set of chains.
type Schedule struct {
	Assignments []Assignment
	Makespan    float64
	WorkerLoad  []float64
}

// ScheduleChains performs precedence-respecting list scheduling of the
// chains onto `workers` identical workers: whenever a worker frees up,
// the ready pipeline (its predecessor finished) with the longest
// remaining chain work starts next. This is the classic LPT-style
// heuristic applied at pipeline granularity — the scheduling use case
// the paper's operator-level models enable.
func ScheduleChains(chains []Chain, workers int) (*Schedule, error) {
	if workers < 1 {
		return nil, errors.New("sched: need at least one worker")
	}
	for _, c := range chains {
		for _, v := range c.Costs {
			if v < 0 {
				return nil, fmt.Errorf("sched: chain %q has negative cost", c.ID)
			}
		}
	}
	type state struct {
		next    int     // next pipeline index to run
		readyAt float64 // when the previous pipeline finished
	}
	states := make([]state, len(chains))
	remaining := make([]float64, len(chains))
	for i, c := range chains {
		remaining[i] = c.Total()
	}
	workerFree := make([]float64, workers)
	var out Schedule
	out.WorkerLoad = make([]float64, workers)

	for {
		// Pick the earliest-free worker.
		w := 0
		for i := 1; i < workers; i++ {
			if workerFree[i] < workerFree[w] {
				w = i
			}
		}
		now := workerFree[w]
		// Candidate chains: next pipeline exists; among those ready by
		// `now`, pick the one with the most remaining work. If none is
		// ready yet, advance to the earliest readiness.
		best := -1
		earliest := -1.0
		for i := range chains {
			st := &states[i]
			if st.next >= len(chains[i].Costs) {
				continue
			}
			if st.readyAt <= now {
				if best < 0 || remaining[i] > remaining[best] {
					best = i
				}
			}
			if earliest < 0 || st.readyAt < earliest {
				earliest = st.readyAt
			}
		}
		if best < 0 {
			if earliest < 0 {
				break // all chains finished
			}
			// Idle the worker until the next pipeline becomes ready.
			workerFree[w] = earliest
			continue
		}
		c := &chains[best]
		st := &states[best]
		cost := c.Costs[st.next]
		start := now
		if st.readyAt > start {
			start = st.readyAt
		}
		end := start + cost
		out.Assignments = append(out.Assignments, Assignment{
			Chain: c.ID, Pipeline: st.next, Worker: w, Start: start, End: end,
		})
		workerFree[w] = end
		out.WorkerLoad[w] += cost
		remaining[best] -= cost
		st.next++
		st.readyAt = end
		if end > out.Makespan {
			out.Makespan = end
		}
	}
	return &out, nil
}

// EvaluateSchedule replays a schedule's assignment order with different
// (e.g. actual) costs, preserving worker assignment and intra-chain
// order, and returns the realized makespan — how the plan would have
// played out given the true resource consumption.
func EvaluateSchedule(s *Schedule, actual map[string][]float64) (float64, error) {
	// Group assignments per worker in start order, keep chain precedence.
	perWorker := map[int][]Assignment{}
	for _, a := range s.Assignments {
		perWorker[a.Worker] = append(perWorker[a.Worker], a)
	}
	for _, as := range perWorker {
		sort.Slice(as, func(i, j int) bool { return as[i].Start < as[j].Start })
	}
	chainDone := map[string]map[int]float64{} // chain -> pipeline -> end time
	workerTime := map[int]float64{}
	var makespan float64
	// Iterate rounds until all assignments placed (simple fixed-point:
	// a pipeline can run once its predecessor's realized end is known).
	pending := len(s.Assignments)
	idx := map[int]int{}
	for pending > 0 {
		progressed := false
		for w, as := range perWorker {
			for idx[w] < len(as) {
				a := as[idx[w]]
				costs, ok := actual[a.Chain]
				if !ok || a.Pipeline >= len(costs) {
					return 0, fmt.Errorf("sched: missing actual costs for %s/%d", a.Chain, a.Pipeline)
				}
				readyAt := 0.0
				if a.Pipeline > 0 {
					prevEnd, done := chainDone[a.Chain][a.Pipeline-1]
					if !done {
						break // predecessor not scheduled yet; try other workers
					}
					readyAt = prevEnd
				}
				start := workerTime[w]
				if readyAt > start {
					start = readyAt
				}
				end := start + costs[a.Pipeline]
				workerTime[w] = end
				if chainDone[a.Chain] == nil {
					chainDone[a.Chain] = map[int]float64{}
				}
				chainDone[a.Chain][a.Pipeline] = end
				if end > makespan {
					makespan = end
				}
				idx[w]++
				pending--
				progressed = true
			}
		}
		if !progressed {
			return 0, errors.New("sched: schedule replay deadlocked (cyclic precedence?)")
		}
	}
	return makespan, nil
}
