package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAdmissionBasics(t *testing.T) {
	a, err := NewAdmissionController(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := a.TryAdmit("q1", 60)
	if err != nil || !ok {
		t.Fatalf("admit q1: %v %v", ok, err)
	}
	ok, err = a.TryAdmit("q2", 50)
	if err != nil || ok {
		t.Fatalf("q2 should not fit: %v %v", ok, err)
	}
	ok, err = a.TryAdmit("q3", 40)
	if err != nil || !ok {
		t.Fatalf("q3 should fit: %v %v", ok, err)
	}
	if a.Used() != 100 || a.Free() != 0 || a.Admitted() != 2 {
		t.Fatalf("state: used=%v free=%v n=%d", a.Used(), a.Free(), a.Admitted())
	}
	if err := a.Release("q1"); err != nil {
		t.Fatal(err)
	}
	if a.Free() != 60 {
		t.Fatalf("free after release = %v", a.Free())
	}
	if err := a.Release("q1"); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestAdmissionSafetyFactor(t *testing.T) {
	a, _ := NewAdmissionController(100, 2)
	if ok, _ := a.TryAdmit("q", 60); ok {
		t.Fatal("safety factor 2 should reject predicted 60 on capacity 100")
	}
	if ok, _ := a.TryAdmit("q", 50); !ok {
		t.Fatal("predicted 50 at safety 2 exactly fits capacity 100")
	}
}

func TestAdmissionErrors(t *testing.T) {
	if _, err := NewAdmissionController(0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	a, _ := NewAdmissionController(10, 1)
	a.TryAdmit("q", 1)
	if _, err := a.TryAdmit("q", 1); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := a.TryAdmit("neg", -1); err == nil {
		t.Fatal("negative prediction accepted")
	}
}

func TestScheduleSingleChainSequential(t *testing.T) {
	s, err := ScheduleChains([]Chain{{ID: "q", Costs: []float64{10, 20, 5}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// One chain cannot parallelize: makespan = sum regardless of workers.
	if s.Makespan != 35 {
		t.Fatalf("makespan %v, want 35", s.Makespan)
	}
	// Precedence: assignments in pipeline order with no overlap.
	for i := 1; i < len(s.Assignments); i++ {
		if s.Assignments[i].Start < s.Assignments[i-1].End {
			t.Fatal("chain pipelines overlap")
		}
	}
}

func TestScheduleParallelChains(t *testing.T) {
	chains := []Chain{
		{ID: "a", Costs: []float64{30}},
		{ID: "b", Costs: []float64{30}},
		{ID: "c", Costs: []float64{30}},
		{ID: "d", Costs: []float64{30}},
	}
	s, err := ScheduleChains(chains, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 60 {
		t.Fatalf("makespan %v, want 60 (2 workers, 4x30)", s.Makespan)
	}
	s1, _ := ScheduleChains(chains, 4)
	if s1.Makespan != 30 {
		t.Fatalf("4 workers makespan %v, want 30", s1.Makespan)
	}
}

func TestScheduleRespectsPrecedenceAcrossWorkers(t *testing.T) {
	chains := []Chain{
		{ID: "a", Costs: []float64{10, 10}},
		{ID: "b", Costs: []float64{5}},
	}
	s, err := ScheduleChains(chains, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ends = map[string]map[int]float64{}
	for _, as := range s.Assignments {
		if ends[as.Chain] == nil {
			ends[as.Chain] = map[int]float64{}
		}
		ends[as.Chain][as.Pipeline] = as.End
		if as.Pipeline > 0 {
			prevEnd := ends[as.Chain][as.Pipeline-1]
			if as.Start < prevEnd {
				t.Fatalf("pipeline %d of %s started before predecessor ended", as.Pipeline, as.Chain)
			}
		}
	}
}

func TestScheduleEdgeCases(t *testing.T) {
	if _, err := ScheduleChains(nil, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := ScheduleChains([]Chain{{ID: "x", Costs: []float64{-1}}}, 1); err == nil {
		t.Fatal("negative cost accepted")
	}
	s, err := ScheduleChains(nil, 2)
	if err != nil || s.Makespan != 0 {
		t.Fatalf("empty schedule: %v %v", s, err)
	}
}

func TestEvaluateScheduleWithActuals(t *testing.T) {
	chains := []Chain{
		{ID: "a", Costs: []float64{10, 10}},
		{ID: "b", Costs: []float64{15}},
	}
	s, err := ScheduleChains(chains, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect predictions: replay reproduces the planned makespan.
	actual := map[string][]float64{"a": {10, 10}, "b": {15}}
	got, err := EvaluateSchedule(s, actual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-s.Makespan) > 1e-9 {
		t.Fatalf("replay makespan %v != planned %v", got, s.Makespan)
	}
	// Underestimated chain a: realized makespan grows.
	worse, err := EvaluateSchedule(s, map[string][]float64{"a": {30, 30}, "b": {15}})
	if err != nil {
		t.Fatal(err)
	}
	if worse <= s.Makespan {
		t.Fatalf("realized makespan %v should exceed planned %v", worse, s.Makespan)
	}
	// Missing actuals are an error.
	if _, err := EvaluateSchedule(s, map[string][]float64{"a": {1, 1}}); err == nil {
		t.Fatal("missing chain accepted")
	}
}

func TestScheduleAllWorkLands(t *testing.T) {
	rng := xrand.New(5)
	f := func(seed uint64) bool {
		r := rng.SplitN(seed)
		var chains []Chain
		total := 0.0
		n := r.IntRange(1, 8)
		for i := 0; i < n; i++ {
			k := r.IntRange(1, 4)
			c := Chain{ID: string(rune('a' + i))}
			for j := 0; j < k; j++ {
				v := r.Range(1, 100)
				c.Costs = append(c.Costs, v)
				total += v
			}
			chains = append(chains, c)
		}
		workers := r.IntRange(1, 4)
		s, err := ScheduleChains(chains, workers)
		if err != nil {
			return false
		}
		// Every pipeline scheduled exactly once.
		count := 0
		var load float64
		for _, a := range s.Assignments {
			count++
			load += a.End - a.Start
		}
		want := 0
		for _, c := range chains {
			want += len(c.Costs)
		}
		// Makespan bounds: at least total/workers, at least the longest
		// chain, at most the serial total.
		lb := total / float64(workers)
		longest := 0.0
		for _, c := range chains {
			if ct := c.Total(); ct > longest {
				longest = ct
			}
		}
		if s.Makespan < lb-1e-9 || s.Makespan < longest-1e-9 || s.Makespan > total+1e-9 {
			return false
		}
		return count == want && math.Abs(load-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
