package feedback

import (
	"math"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/stats"
)

// The background retrainer: triggered by the drift detector, it
// re-featurizes the buffered observations through internal/features
// (via core's training path), trains a fresh estimator, validates it on
// a held-out slice of the log, and publishes it only if it beats the
// incumbent — the reject-if-worse guard that keeps one bad batch of
// actuals (clock skew, a broken execution harness, an adversarial
// client) from poisoning the serving path.

// splitObservations deals every k-th observation to the holdout so both
// slices span the buffer's full time range (a suffix split would train
// on old drift and validate on new).
func splitObservations(obs []*Observation, holdoutFraction float64) (train, holdout []*plan.Plan) {
	k := int(math.Round(1 / holdoutFraction))
	if k < 2 {
		k = 2
	}
	for i, o := range obs {
		if i%k == k-1 {
			holdout = append(holdout, o.Plan)
		} else {
			train = append(train, o.Plan)
		}
	}
	if len(holdout) == 0 && len(train) > 1 { // tiny buffers still validate
		holdout = train[len(train)-1:]
		train = train[:len(train)-1]
	}
	return train, holdout
}

// meanHoldoutError is the mean plan-level L1 relative error of est on
// the held-out plans.
func meanHoldoutError(est *core.Estimator, holdout []*plan.Plan, r plan.ResourceKind) float64 {
	if len(holdout) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range holdout {
		sum += stats.L1RelErr(est.PredictPlan(p), p.TotalActual().Get(r))
	}
	return sum / float64(len(holdout))
}

// retrain runs in its own goroutine per attempt (at most one in flight
// per route — see retrainEligible). cur/curVersion are the incumbent at
// trigger time; obs is a private snapshot of the route buffer.
func (l *Loop) retrain(key routeKey, cur *core.Estimator, curVersion uint64, obs []*Observation) {
	defer l.wg.Done()
	accepted, published, holdErr := l.retrainOnce(key, cur, curVersion, obs)

	l.mu.Lock()
	st := l.route(key)
	st.retraining = false
	if accepted {
		st.retrains++
		st.lastVersion = published
		st.seenVersion = published
		st.lastHoldout = holdErr
		// The windows described the replaced version; start fresh so the
		// detector measures the new model on its own terms.
		st.resetWindows()
	} else {
		st.rejections++
	}
	l.mu.Unlock()

	if accepted {
		l.opts.logf("feedback: %s/%s retrained: published v%d (holdout err %.3f, replacing v%d)",
			key.schema, key.resource, published, holdErr, curVersion)
	} else {
		l.opts.logf("feedback: %s/%s retrain rejected (holdout err %.3f)", key.schema, key.resource, holdErr)
	}
}

// retrainOnce trains, validates and (maybe) publishes one candidate.
func (l *Loop) retrainOnce(key routeKey, cur *core.Estimator, curVersion uint64, obs []*Observation) (accepted bool, published uint64, holdErr float64) {
	trainPlans, holdout := splitObservations(obs, l.opts.HoldoutFraction)
	cfg := core.DefaultConfig()
	cfg.Mart.Iterations = l.opts.RetrainIterations
	// Fan the candidate fits across the training pool so the retrain —
	// which runs while the old model is still serving degraded estimates
	// — finishes as fast as the hardware allows.
	cfg.Workers = l.opts.TrainWorkers
	if cur != nil {
		// Keep the incumbent's feature mode: a model serving estimated
		// cardinalities must be replaced by one trained the same way.
		cfg.Mode = cur.Mode
	}
	cand, err := core.TrainFromObservations(trainPlans, key.resource, cfg)
	if err != nil {
		l.opts.logf("feedback: %s/%s retrain failed: %v", key.schema, key.resource, err)
		return false, 0, math.Inf(1)
	}
	// Re-stamp the baseline from the held-out slice: the in-sample
	// snapshot TrainFromObservations leaves understates real error
	// (MART fits its own training data well), which would make the next
	// drift cycle hair-triggered on a perfectly stationary workload.
	cand.SetBaseline(holdout)

	holdErr = meanHoldoutError(cand, holdout, key.resource)
	// Reject-if-worse guard. Two conditions, both required:
	//   1. absolute: the candidate must clear MaxHoldoutError. Garbage
	//      actuals are irreducible noise — no model fits them, including
	//      the candidate trained on them — so this gate catches poisoned
	//      logs even when the incumbent looks worse on that same garbage.
	//   2. relative: the candidate must beat the incumbent on the very
	//      observations that triggered the drift alarm.
	if holdErr > l.opts.MaxHoldoutError {
		return false, 0, holdErr
	}
	if cur != nil {
		if curErr := meanHoldoutError(cur, holdout, key.resource); holdErr >= curErr {
			return false, 0, holdErr
		}
	}
	// The incumbent the guard validated against must still be serving: a
	// rollback or manual hot-swap that landed while we trained is a
	// deliberate operator decision this retrain must not silently undo.
	// (Training takes seconds; this shrinks the override window to the
	// instants between the check and the publish.)
	if _, v, ok := l.opts.Publisher.CurrentEstimator(key.schema, key.resource); ok && v != curVersion {
		l.opts.logf("feedback: %s/%s retrain superseded by concurrent publish (v%d -> v%d), discarding candidate",
			key.schema, key.resource, curVersion, v)
		return false, 0, holdErr
	}
	return true, l.opts.Publisher.PublishEstimator(key.schema, cand), holdErr
}
