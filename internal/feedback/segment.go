package feedback

import (
	"bufio"
	"bytes"
	"errors"
	"io"
)

// Fleet-forwarding helpers over the observation log's CRC-framed
// segment codec: a forwarder tails a replica's segments and ships the
// raw bytes of whole records to the designated retrainer, whose
// ingest endpoint decodes them back into observations. The wire
// format IS the on-disk format — no re-encoding on either side.

// DecodeRecords reads CRC-framed observation records from r and calls
// fn for each decoded observation, returning how many were delivered.
// io.EOF on a record boundary ends the scan cleanly; a torn or
// corrupt record (or an fn error) stops it with the error, records
// before it already delivered.
func DecodeRecords(r io.Reader, fn func(*Observation) error) (int, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	n := 0
	for {
		payload, _, err := readRecord(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		obs, err := DecodeObservation(payload)
		if err != nil {
			return n, err
		}
		if err := fn(obs); err != nil {
			return n, err
		}
		n++
	}
}

// ValidRecordPrefix returns the length in bytes and count of the
// longest prefix of b that consists of whole, intact records. A
// forwarder reading a live segment uses it to ship only completed
// records: the torn tail a concurrent append is still writing stays
// behind and is retried once the next poll sees it whole.
func ValidRecordPrefix(b []byte) (size int64, count int) {
	br := bufio.NewReader(bytes.NewReader(b))
	for {
		_, n, err := readRecord(br)
		if err != nil {
			return size, count
		}
		size += n
		count++
	}
}
