package feedback

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stats"
)

// Loop is the online feedback controller: Observe ingests one executed
// plan (persisting it to the observation log and updating the rolling
// error windows), the drift detector runs inline every CheckEvery
// observations, and drift findings hand a buffer snapshot to a
// background retrainer that publishes through the Publisher.
//
// Concurrency: Observe is safe for concurrent use (the HTTP layer calls
// it from many handlers). Log appends synchronize per shard; window and
// buffer state is guarded by one mutex; at most one retrain per route
// runs at a time, on its own goroutine, against a private copy of the
// buffer. Close waits for in-flight retrains and flushes the log.
type Loop struct {
	opts Options
	log  *Log // nil when persistence is disabled

	mu     sync.Mutex
	routes map[routeKey]*routeState
	closed bool

	wg sync.WaitGroup // in-flight retrains

	// Telemetry: ingest latency of accepted observations (validate +
	// log append + window/buffer update) and the count rejected before
	// ingest. Read by the serving layer's /metrics collectors.
	ingestHist obs.Histogram
	rejected   atomic.Uint64

	// exemplars keeps the top-K worst mispredictions for
	// GET /debug/exemplars — see exemplars.go.
	exemplars exemplarStore
}

// New opens a feedback loop. When opts.Dir is set, the observation log
// is opened (recovering crash-torn tails) and, unless opts.SkipReplay,
// replayed into the in-memory windows and retraining buffers so a
// restarted server resumes with its accumulated evidence.
func New(opts Options) (*Loop, error) {
	l := &Loop{opts: opts.withDefaults(), routes: make(map[routeKey]*routeState)}
	l.exemplars.cap = l.opts.ExemplarK
	if l.opts.Dir != "" {
		log, err := OpenLog(LogOptions{
			Dir:            l.opts.Dir,
			SegmentBytes:   l.opts.SegmentBytes,
			Shards:         l.opts.Shards,
			RetainSegments: l.opts.RetainSegments,
		})
		if err != nil {
			return nil, err
		}
		l.log = log
		if !l.opts.SkipReplay {
			// Collect, then ingest in timestamp order: segment replay is
			// ordered within a shard but not across shards, and the
			// windows/buffers must re-warm with the true most-recent tail,
			// not a shard-strided mix. Memory is bounded by RetainSegments.
			var replayed []*Observation
			n, err := l.log.Replay(func(obs *Observation) error {
				replayed = append(replayed, obs)
				return nil
			})
			if err != nil {
				l.log.Close()
				return nil, err
			}
			sort.SliceStable(replayed, func(i, j int) bool {
				return replayed[i].UnixNanos < replayed[j].UnixNanos
			})
			for _, obs := range replayed {
				l.ingest(obs, false)
			}
			if n > 0 {
				l.opts.logf("feedback: replayed %d observations from %s", n, l.opts.Dir)
			}
		}
	}
	return l, nil
}

// Observe ingests one observation: validate, persist, update error
// windows, and run the drift check. Invalid observations are rejected
// before they can reach the log or the retrainer. The observation
// struct is copied (the caller's is never written to); the Plan it
// points at becomes loop-owned — see Observation.Plan.
func (l *Loop) Observe(obs *Observation) error {
	start := time.Now()
	err := l.observe(obs)
	if err == nil {
		l.ingestHist.Observe(time.Since(start))
	} else if errors.Is(err, ErrInvalid) {
		l.rejected.Add(1)
	}
	return err
}

// IngestLatency snapshots the ingest-latency histogram of accepted
// observations.
func (l *Loop) IngestLatency() obs.HistogramSnapshot { return l.ingestHist.Snapshot() }

// Rejected counts observations rejected before ingest (malformed, or a
// new schema past the route limit).
func (l *Loop) Rejected() uint64 { return l.rejected.Load() }

func (l *Loop) observe(obs *Observation) error {
	if err := obs.validate(); err != nil {
		return err
	}
	o := *obs
	if o.UnixNanos == 0 {
		o.UnixNanos = time.Now().UnixNano()
	}
	l.mu.Lock()
	closed := l.closed
	_, known := l.routes[routeKey{schema: o.Schema, resource: o.Resource}]
	atCap := !known && len(l.routes) >= l.opts.MaxRoutes
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if atCap {
		// Reject before the log sees it: a sprayed schema must not be
		// persisted and replayed into memory on every restart either.
		// (Concurrent first-time routes can overshoot the bound by the
		// number of in-flight Observes; ingest re-checks under the lock.)
		return fmt.Errorf("%w: route limit (%d) reached, rejecting new schema %q",
			ErrInvalid, l.opts.MaxRoutes, o.Schema)
	}
	// Durability first: the log is the source of truth the windows and
	// buffers are rebuilt from on restart. An Observe racing Close gets
	// ErrClosed from the log here (the closed re-check in ingest keeps
	// the retrainer from spawning after Close's wait).
	if l.log != nil {
		if err := l.log.Append(&o); err != nil {
			return err
		}
	}
	l.ingest(&o, true)
	return nil
}

// ingest updates in-memory state for obs. check=false during replay:
// replayed observations warm the windows and buffers but never trigger
// retrains (the stored predictions came from models that may since have
// been replaced; fresh traffic re-confirms drift within CheckEvery
// observations).
func (l *Loop) ingest(obs *Observation, check bool) {
	key := routeKey{schema: obs.Schema, resource: obs.Resource}
	actual := obs.Actual()

	// Resolve the current model once, outside the loop mutex: per-node
	// predictions feed the per-operator gauges, and their sum stands in
	// for Predicted when the caller did not supply one.
	var est *core.Estimator
	var version uint64
	if l.opts.Publisher != nil {
		est, version, _ = l.opts.Publisher.CurrentEstimator(obs.Schema, obs.Resource)
	}
	var opErrs []opSample
	predicted := obs.Predicted
	// A report carrying a prediction from a version that has since been
	// replaced (in-flight executions straddling a hot-swap) must not be
	// charged to the current model's window — that would refill a
	// freshly-reset window with the old model's errors and re-trigger
	// drift against a model that is actually accurate. Recompute against
	// the current model below instead.
	if predicted > 0 && obs.ModelVersion != 0 && version != 0 && obs.ModelVersion != version {
		predicted = 0
	}
	var vecs []features.Vector
	if est != nil {
		var sum float64
		vecs = features.ExtractPlan(obs.Plan, est.Mode)
		nodes := obs.Plan.Nodes()
		opErrs = make([]opSample, 0, len(nodes))
		for i, n := range nodes {
			pred := est.PredictVector(n.Kind, &vecs[i])
			act := n.Actual.Get(obs.Resource)
			sum += pred
			opErrs = append(opErrs, opSample{kind: n.Kind, err: stats.L1RelErr(pred, act), pred: pred, act: act})
		}
		if predicted <= 0 {
			predicted = sum
		}
	}

	var startRetrain bool
	var retrainObs []*Observation
	var recentQ float64
	l.mu.Lock()
	if _, ok := l.routes[key]; !ok && len(l.routes) >= l.opts.MaxRoutes {
		// Authoritative route bound (Observe pre-checks, replay of a log
		// written under a larger MaxRoutes lands here).
		l.mu.Unlock()
		return
	}
	st := l.route(key)
	st.count++
	// The windows describe one serving version. When the model changed
	// out-of-band — POST /models, a rollback, another publisher — the
	// accumulated errors belong to the replaced version; comparing them
	// against the new model's baseline could fire a drift retrain that
	// immediately overrides an operator's deliberate swap. Reset and
	// measure the new version on its own traffic. Only a version
	// *advance* resets: an in-flight straggler that resolved the old
	// model just before a swap must not wipe the new model's samples
	// backwards — its errors are simply skipped as stale. (A 0 → v
	// transition is not a swap: it is the first model appearing after
	// windows were warmed from the log or from client-supplied
	// predictions.)
	if version > st.seenVersion {
		if st.seenVersion != 0 {
			st.resetWindows()
		}
		st.seenVersion = version
	}
	staleResolve := version != 0 && version < st.seenVersion
	scored := predicted > 0 && !staleResolve
	if scored {
		st.window.Add(stats.L1RelErr(predicted, actual))
		// Accuracy telemetry: the signed log-ratio histogram and the
		// empirical-coverage counters are cumulative (Prometheus-style),
		// so unlike the windows they survive version swaps and describe
		// the route's whole history.
		st.errHist.ObserveRatio(predicted, actual)
		st.covTotal++
		if ratio := factorError(predicted, actual); ratio <= 1.5 {
			st.cov15++
			st.cov20++
		} else if ratio <= 2 {
			st.cov20++
		}
	}
	if !staleResolve {
		for _, s := range opErrs {
			w, ok := st.perOp[s.kind]
			if !ok {
				w = stats.NewRolling(l.opts.PerOpWindowSize)
				st.perOp[s.kind] = w
			}
			w.Add(s.err)
			st.opHist(s.kind).ObserveRatio(s.pred, s.act)
		}
	}
	st.push(obs, l.opts.BufferCap)
	if check && !l.closed && st.count%uint64(l.opts.CheckEvery) == 0 {
		st.drifting = l.drifting(st, est)
		if st.drifting && l.retrainEligible(st) {
			st.retraining = true
			st.lastAttempt = st.count
			startRetrain = true
			retrainObs = st.buffered()
			recentQ = st.window.Quantile(l.opts.DriftQuantile)
			// Register the retrain while still holding the mutex: Close
			// flips closed under the same mutex before it waits on the
			// WaitGroup, so either this Add is visible to that Wait or
			// the closed check above suppressed the spawn — never an Add
			// racing a returned Wait.
			l.wg.Add(1)
		}
	}
	l.mu.Unlock()

	// Worst-prediction exemplars: outside the loop mutex (plan encoding
	// is not free), gated by a cheap rank pre-check so steady accurate
	// traffic pays two float ops and one short lock.
	if scored {
		absLR := math.Abs(math.Log(predicted / actual))
		if l.exemplars.qualifies(absLR) {
			mv := obs.ModelVersion
			if mv == 0 || predicted != obs.Predicted {
				mv = version
			}
			e := &Exemplar{
				Schema:       obs.Schema,
				Resource:     obs.Resource.String(),
				RequestID:    obs.RequestID,
				ModelVersion: mv,
				Predicted:    predicted,
				Actual:       actual,
				AbsLogRatio:  absLR,
				UnixNanos:    obs.UnixNanos,
			}
			if wire, err := plan.EncodeJSON(obs.Plan); err == nil {
				e.Plan = wire
			}
			if est != nil {
				nodes := obs.Plan.Nodes()
				e.Nodes = make([]ExemplarNode, 0, len(nodes))
				for i := range nodes {
					e.Nodes = append(e.Nodes, ExemplarNode{
						Op:        opErrs[i].kind.String(),
						Features:  append([]float64(nil), vecs[i][:]...),
						Predicted: opErrs[i].pred,
						Actual:    opErrs[i].act,
					})
				}
			}
			l.exemplars.offer(e)
		}
	}

	if startRetrain {
		l.opts.logf("feedback: %s/%s drift detected (recent p%d err %.3f vs baseline %.3f), retraining on %d observations",
			key.schema, key.resource, int(l.opts.DriftQuantile*100),
			recentQ, l.driftBaseline(est), len(retrainObs))
		go l.retrain(key, est, version, retrainObs)
	}
}

type opSample struct {
	kind      plan.OpKind
	err       float64
	pred, act float64
}

// factorError is the symmetric multiplicative miss of a prediction:
// max(p/a, a/p), 1 when exact. Both inputs must be positive.
func factorError(predicted, actual float64) float64 {
	r := predicted / actual
	if r < 1 {
		return 1 / r
	}
	return r
}

// Quiesce blocks until no retrain is in flight — the shutdown barrier
// (and a test hook: after the last Observe returns, any triggered
// retrain has either published or been rejected once Quiesce returns).
func (l *Loop) Quiesce() { l.wg.Wait() }

// Flush pushes buffered log records to the OS.
func (l *Loop) Flush() error {
	if l.log == nil {
		return nil
	}
	return l.log.Flush()
}

// Close stops ingestion, waits for in-flight retrains, and flushes and
// closes the observation log. Safe to call twice.
func (l *Loop) Close() error {
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.mu.Unlock()
	if already {
		return nil
	}
	l.wg.Wait()
	if l.log != nil {
		return l.log.Close()
	}
	return nil
}
