package feedback

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Log is the segmented append-only observation log. Records are framed
// by the CRC codec (codec.go); segments rotate past a size threshold so
// old observations can eventually be archived or deleted wholesale.
// Writers are sharded: each shard owns an independent segment sequence
// and lock, so concurrent ingest scales past a single mutex (appends
// round-robin across shards; replay is ordered within a shard, not
// globally — consumers that care about order sort on UnixNanos).
//
// Crash safety: each record is written straight through to the OS in
// one write under the shard lock — no user-space buffering — so once
// Append returns, a process crash loses at most a record torn by the
// crash itself (power loss is additionally bounded by Sync). On open,
// the tail segment of every shard is scanned and truncated back to the
// last valid record boundary.
type Log struct {
	opts   LogOptions
	shards []*logShard
	next   atomic.Uint64 // round-robin append counter
}

// LogOptions configures an observation log.
type LogOptions struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates segments past this size (default 4 MiB).
	SegmentBytes int64
	// Shards is the number of independent writers (default 1). A
	// directory written with more shards than requested reopens with
	// the on-disk count, so no shard's segments are ever orphaned from
	// retention and replay ordering.
	Shards int
	// RetainSegments bounds each shard to this many segments, pruning
	// the oldest on rotation and on open — so disk use and startup
	// replay stay proportional to retention, not uptime (default 8;
	// negative disables pruning).
	RetainSegments int
}

type logShard struct {
	mu     sync.Mutex
	dir    string
	id     int
	seg    int // current segment index
	retain int // segments kept per shard; <= 0 keeps all
	f      *os.File
	size   int64
}

func segmentName(shard, seg int) string {
	return fmt.Sprintf("obs-%02d-%08d.seg", shard, seg)
}

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (shard, seg int, ok bool) {
	if _, err := fmt.Sscanf(name, "obs-%02d-%08d.seg", &shard, &seg); err != nil {
		return 0, 0, false
	}
	return shard, seg, name == segmentName(shard, seg)
}

// OpenLog opens (or creates) the log in opts.Dir, recovering each
// shard's tail segment: the segment is scanned record by record and
// truncated after the last one whose CRC checks out.
func OpenLog(opts LogOptions) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("feedback: observation log needs a directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.RetainSegments == 0 {
		opts.RetainSegments = 8
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: %w", err)
	}
	lastSeg := make(map[int]int) // shard -> max segment index on disk
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("feedback: %w", err)
	}
	for _, e := range entries {
		if shard, seg, ok := parseSegmentName(e.Name()); ok {
			if seg > lastSeg[shard] {
				lastSeg[shard] = seg
			}
			// Adopt shards beyond the requested count: leaving them
			// writer-less would orphan their segments from pruning while
			// replay kept reading them forever.
			if shard >= opts.Shards {
				opts.Shards = shard + 1
			}
		}
	}
	l := &Log{opts: opts, shards: make([]*logShard, opts.Shards)}
	for i := range l.shards {
		sh := &logShard{dir: opts.Dir, id: i, seg: lastSeg[i], retain: opts.RetainSegments}
		if sh.seg == 0 {
			sh.seg = 1
		}
		if err := sh.open(); err != nil {
			l.Close()
			return nil, err
		}
		sh.prune()
		l.shards[i] = sh
	}
	return l, nil
}

// prune removes segments older than the shard's retention bound. Best
// effort: a failed remove is retried on the next rotation. Called with
// the shard unshared (OpenLog) or under its lock (rotate).
func (s *logShard) prune() {
	if s.retain <= 0 {
		return
	}
	for k := s.seg - s.retain; k >= 1; k-- {
		if err := os.Remove(filepath.Join(s.dir, segmentName(s.id, k))); err != nil {
			// Segments are contiguous; the first missing one ends the
			// backlog.
			if os.IsNotExist(err) {
				return
			}
		}
	}
}

// open opens the shard's current segment for appending, truncating a
// corrupt tail first. Called with the shard unshared (OpenLog) or under
// its lock (rotate).
func (s *logShard) open() error {
	path := filepath.Join(s.dir, segmentName(s.id, s.seg))
	valid, _, scanErr := scanSegment(path, nil)
	if scanErr != nil && !errors.Is(scanErr, os.ErrNotExist) {
		return scanErr
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return fmt.Errorf("feedback: truncate corrupt tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("feedback: %w", err)
	}
	s.f = f
	s.size = valid
	return nil
}

// Append encodes obs and writes it to the next shard in round-robin
// order, rotating that shard's segment when full.
func (l *Log) Append(obs *Observation) error {
	rec, err := EncodeObservation(nil, obs)
	if err != nil {
		return err
	}
	s := l.shards[l.next.Add(1)%uint64(len(l.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return ErrClosed
	}
	if s.size > 0 && s.size+int64(len(rec)) > l.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(rec); err != nil {
		return fmt.Errorf("feedback: append: %w", err)
	}
	s.size += int64(len(rec))
	return nil
}

// rotate seals the current segment and starts the next. The next
// segment is opened before the current one is released, so a failed
// rotation (disk full, fd exhaustion) leaves the shard writing to the
// old segment — degraded past SegmentBytes, retried on the next append
// — rather than wedged. Caller holds the shard lock.
func (s *logShard) rotate() error {
	old, oldSize := s.f, s.size
	s.seg++
	if err := s.open(); err != nil {
		s.seg--
		s.f, s.size = old, oldSize
		return err
	}
	old.Close()
	s.prune()
	return nil
}

// Flush is a no-op for durability against process crashes — Append
// writes through to the OS — and is kept for callers that flush before
// replaying. Sync fsyncs for durability against power loss.
func (l *Log) Flush() error { return nil }

// Sync fsyncs every shard's current segment.
func (l *Log) Sync() error {
	var first error
	for _, s := range l.shards {
		if s == nil {
			continue
		}
		s.mu.Lock()
		if s.f != nil {
			if err := s.f.Sync(); err != nil && first == nil {
				first = err
			}
		}
		s.mu.Unlock()
	}
	return first
}

// Close closes every shard. Appends after Close fail with ErrClosed.
func (l *Log) Close() error {
	var first error
	for _, s := range l.shards {
		if s == nil {
			continue
		}
		s.mu.Lock()
		if s.f != nil {
			if err := s.f.Close(); err != nil && first == nil {
				first = err
			}
			s.f = nil
		}
		s.mu.Unlock()
	}
	return first
}

// Replay feeds every decodable observation on disk to fn, segment by
// segment in (shard, segment) order. A corrupt tail ends that shard's
// replay without error — that is the expected post-crash state. fn
// errors abort the replay. Returns the number of observations replayed.
func (l *Log) Replay(fn func(*Observation) error) (int, error) {
	if err := l.Flush(); err != nil {
		return 0, err
	}
	return ReplayDir(l.opts.Dir, fn)
}

// ReplayDir replays an observation-log directory without opening it for
// writing — e.g. offline inspection of a live server's log.
func ReplayDir(dir string, fn func(*Observation) error) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("feedback: %w", err)
	}
	type segFile struct{ shard, seg int }
	var segs []segFile
	for _, e := range entries {
		if shard, seg, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segFile{shard, seg})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].shard != segs[j].shard {
			return segs[i].shard < segs[j].shard
		}
		return segs[i].seg < segs[j].seg
	})
	total := 0
	for _, sf := range segs {
		_, n, err := scanSegment(filepath.Join(dir, segmentName(sf.shard, sf.seg)), fn)
		total += n
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return total, err
		}
	}
	return total, nil
}

// scanSegment reads records from path until EOF or the first corrupt
// record, invoking fn (when non-nil) per decoded observation. It
// returns the byte offset just past the last valid record — the
// truncation point for crash recovery — and the record count. Framing
// corruption is not an error (it is what a crash leaves behind); fn
// errors and I/O errors are.
func scanSegment(path string, fn func(*Observation) error) (valid int64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	for {
		payload, size, err := readRecord(br)
		if errors.Is(err, io.EOF) || errors.Is(err, errCorrupt) {
			return valid, n, nil
		}
		if err != nil {
			return valid, n, err
		}
		// A CRC-valid record that fails to decode is a writer bug, not
		// crash damage; stop rather than resync into garbage.
		obs, err := DecodeObservation(payload)
		if err != nil {
			return valid, n, fmt.Errorf("feedback: %s: %w", filepath.Base(path), err)
		}
		valid += size
		n++
		if fn != nil {
			if err := fn(obs); err != nil {
				return valid, n, err
			}
		}
	}
}
