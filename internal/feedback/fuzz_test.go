package feedback

// Fuzz target for the observation log's CRC-framed record codec: the
// frame reader must never panic on arbitrary bytes (torn headers,
// corrupt lengths, CRC mismatches), and every CRC-valid record it
// yields must decode without panicking; decodable observations must
// re-encode to a stable fixed point. Seed corpus lives in
// testdata/fuzz/FuzzFrameDecode.

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/plan"
)

// fuzzObservation builds a small valid observation for seeding.
func fuzzObservation(schema string, version uint64) *Observation {
	leaf := plan.NewLeaf(plan.TableScan, "t")
	leaf.TableRows, leaf.TablePages, leaf.TableCols = 100, 10, 4
	leaf.Out = plan.Cardinality{Rows: 100, Width: 8}
	leaf.Actual = plan.Resources{CPU: 1.5, IO: 10}
	root := plan.NewUnary(plan.Filter, leaf)
	root.Out = plan.Cardinality{Rows: 10, Width: 8}
	root.Actual = plan.Resources{CPU: 0.5}
	return &Observation{
		Schema:       schema,
		Resource:     plan.CPUTime,
		ModelVersion: version,
		Predicted:    2.25,
		UnixNanos:    1700000000000000000,
		Plan:         plan.New(root, "fuzz"),
	}
}

func FuzzFrameDecode(f *testing.F) {
	// Seeds: a valid single record, two back-to-back records, a
	// truncated tail, a flipped CRC byte, and framing garbage.
	rec, err := EncodeObservation(nil, fuzzObservation("tpch", 3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec)
	two, _ := EncodeObservation(append([]byte(nil), rec...), fuzzObservation("", 0))
	f.Add(two)
	f.Add(rec[:len(rec)-3])
	corrupt := append([]byte(nil), rec...)
	corrupt[9] ^= 0xff // CRC byte
	f.Add(corrupt)
	f.Add([]byte("FBL1 but not really"))
	f.Add([]byte{0x31, 0x4c, 0x42, 0x46, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var consumed int64
		for {
			payload, size, err := readRecord(br) // must never panic
			if err != nil {
				break // io.EOF (clean boundary) or errCorrupt
			}
			if size <= recordHeader || size-recordHeader != int64(len(payload)) {
				t.Fatalf("inconsistent record size %d for %d payload bytes", size, len(payload))
			}
			consumed += size
			if consumed > int64(len(data)) {
				t.Fatalf("consumed %d of %d input bytes", consumed, len(data))
			}
			obs, err := DecodeObservation(payload) // must never panic
			if err != nil {
				continue // CRC-valid but semantically bad: writer bug class
			}
			// Decodable observations re-encode to a fixed point.
			enc, err := EncodeObservation(nil, obs)
			if err != nil {
				t.Fatalf("decoded observation does not re-encode: %v", err)
			}
			payload2, _, err := readRecord(bufio.NewReader(bytes.NewReader(enc)))
			if err != nil {
				t.Fatalf("re-encoded record does not frame-decode: %v", err)
			}
			obs2, err := DecodeObservation(payload2)
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v", err)
			}
			enc2, err := EncodeObservation(nil, obs2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("observation encoding is not a fixed point")
			}
		}
	})
}
