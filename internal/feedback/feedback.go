// Package feedback closes the serve → observe → retrain → hot-swap
// loop: the online half of the paper's "robust estimation under
// changing workloads" claim.
//
// The serving layer trains offline and serves frozen models; once the
// production workload drifts outside the training distribution,
// accuracy silently degrades. This package ingests (plan, predicted,
// actual) observations from the serving path, persists them to a
// segmented append-only log (binary codec with CRC framing, crash-safe
// replay), tracks per-schema and per-operator rolling relative-error
// quantiles, and compares the recent error distribution against the
// model's training-time baseline (core.ErrorBaseline). When recent
// errors cross a configured multiple of the baseline, a background
// retrainer re-featurizes the logged observations, trains a fresh
// estimator through internal/core, validates it on a held-out slice of
// the log (reject-if-worse guard), and publishes it to the serving
// registry — where the version-keyed prediction cache self-invalidates
// and traffic moves over with zero downtime.
//
// Observation, drift tracking and retraining are all per (schema,
// resource) route: CPU and I/O models drift and retrain independently.
// Durability of the rollout is the registry's concern: when the serving
// registry has a model store attached (serve.Registry.AttachStore), a
// retrained model's publish persists a coherent snapshot of the
// schema's whole model set — the retrained resource alongside the
// incumbent others — so a crash after rollout restores exactly the
// serving state the loop produced.
package feedback

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/plan"
)

// ErrClosed is returned by Observe after Close.
var ErrClosed = errors.New("feedback: loop closed")

// ErrInvalid wraps rejections of malformed observations (no plan, no
// actuals, invalid plan structure) — the caller's fault, as opposed to
// ingest failures like log I/O errors.
var ErrInvalid = errors.New("feedback: invalid observation")

// Observation is one (plan, predicted, actual) triple reported by the
// serving path: a plan that was estimated earlier and has since
// finished executing, with measured per-operator resources filled in.
type Observation struct {
	// Schema the request was routed with (the registry's model key).
	Schema string
	// Resource the prediction was for.
	Resource plan.ResourceKind
	// ModelVersion that produced Predicted, when known (0 otherwise).
	ModelVersion uint64
	// Predicted is the served plan-total prediction. When zero, the
	// loop recomputes it against the current model at ingest time.
	Predicted float64
	// Plan is the executed physical plan; node Actual fields carry the
	// measurements the retrainer learns from. Observe retains the plan
	// in the retraining buffer and a background retrain may read it
	// later — ownership passes to the loop, so callers must not mutate
	// the plan (e.g. re-execute it) after reporting it. The HTTP path
	// decodes a fresh plan per request and is unaffected.
	Plan *plan.Plan
	// UnixNanos timestamps the observation (ingest time when zero).
	UnixNanos int64
	// RequestID is the serving-layer request ID of the original
	// estimate (the X-Request-ID the service echoed), when the reporter
	// carries it. It joins worst-prediction exemplars with slow-request
	// traces and request logs on one key. Optional; persisted with the
	// observation (codec v2).
	RequestID string
}

// Actual returns the measured plan total for the observed resource.
func (o *Observation) Actual() float64 {
	return o.Plan.TotalActual().Get(o.Resource)
}

// validate rejects observations the retrainer could not learn from.
func (o *Observation) validate() error {
	if o.Plan == nil || o.Plan.Root == nil {
		return fmt.Errorf("%w: no plan", ErrInvalid)
	}
	if err := o.Plan.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if len(o.Schema) >= maxSchemaLen {
		return fmt.Errorf("%w: schema name %d bytes long", ErrInvalid, len(o.Schema))
	}
	if len(o.RequestID) >= maxRequestIDLen {
		return fmt.Errorf("%w: request ID %d bytes long", ErrInvalid, len(o.RequestID))
	}
	// An out-of-range resource would encode fine but poison the log:
	// decode treats it as a writer bug and refuses the whole segment.
	if o.Resource != plan.CPUTime && o.Resource != plan.LogicalIO {
		return fmt.Errorf("%w: unknown resource kind %d", ErrInvalid, o.Resource)
	}
	// Predicted must be finite and non-negative: zero is the documented
	// "recompute against the current model at ingest" sentinel, but a
	// NaN/±Inf/negative value would flow straight into the signed
	// log-ratio error windows and poison the drift detector's quantiles
	// (one NaN makes every P90 comparison false, silently disarming
	// retraining).
	if math.IsNaN(o.Predicted) || math.IsInf(o.Predicted, 0) || o.Predicted < 0 {
		return fmt.Errorf("%w: predicted %v is not a finite non-negative value", ErrInvalid, o.Predicted)
	}
	// Actuals are training labels: the retrainer fits log-scale targets,
	// so the plan total must be finite and strictly positive. !(a > 0)
	// rather than a <= 0 so NaN (all comparisons false) is caught too.
	if a := o.Actual(); !(a > 0) || math.IsInf(a, 0) {
		return fmt.Errorf("%w: actual %s total %v is not a finite positive measurement", ErrInvalid, o.Resource, a)
	}
	return nil
}

// Publisher is the feedback loop's view of the serving registry: read
// the current model for a route, publish a retrained replacement.
// *serve.Registry implements it.
type Publisher interface {
	// CurrentEstimator returns the live estimator and version for
	// (schema, resource), following the registry's wildcard fallback.
	CurrentEstimator(schema string, resource plan.ResourceKind) (est *core.Estimator, version uint64, ok bool)
	// PublishEstimator atomically installs est as the new version for
	// schema and returns the assigned version.
	PublishEstimator(schema string, est *core.Estimator) (version uint64)
}

// Options configures a Loop. The zero value of every field selects a
// sensible default; only Publisher is required for retraining (a Loop
// without one still logs and tracks errors).
type Options struct {
	// Dir is the observation-log directory. Empty disables persistence:
	// observations are tracked in memory only.
	Dir string
	// SegmentBytes rotates log segments past this size (default 4 MiB).
	SegmentBytes int64
	// Shards is the number of independent log writers (default 1).
	// Appends round-robin across shards, trading global ordering for
	// ingest throughput — see BenchmarkFeedbackIngest.
	Shards int
	// Replay controls whether opening the loop replays the existing log
	// into the in-memory windows and retrain buffer (default true when
	// Dir is set; set SkipReplay to suppress).
	SkipReplay bool

	// Publisher connects the loop to the serving registry. Nil disables
	// drift-triggered retraining (observations are still logged).
	Publisher Publisher

	// WindowSize bounds the per-schema rolling error window (default 512).
	WindowSize int
	// PerOpWindowSize bounds the per-operator windows (default 256).
	PerOpWindowSize int
	// BufferCap bounds the in-memory retraining buffer of recent
	// observations per (schema, resource) (default 8192; raised to
	// MinObservations when set lower, so a large MinObservations cannot
	// silently make retraining unreachable).
	BufferCap int
	// ExemplarK bounds the worst-prediction exemplar store: the top-K
	// largest mispredictions (by |log-ratio error|) are kept with their
	// plan wire form and features for GET /debug/exemplars (default 32;
	// negative disables capture).
	ExemplarK int
	// MaxRoutes bounds the number of distinct (schema, resource) routes
	// the loop tracks (default 64). Observations for a new route beyond
	// the bound are rejected as invalid — without this, a client
	// spraying unique schema names at POST /observe would grow the
	// per-route windows and buffers without bound.
	MaxRoutes int
	// RetainSegments bounds the on-disk log to this many segments per
	// shard; older segments are pruned on rotation so the log — and the
	// startup replay — stay proportional to the retention the loop
	// actually uses, not total uptime. Default 8; negative disables
	// pruning.
	RetainSegments int

	// DriftQuantile is the windowed error quantile compared against the
	// baseline (default 0.9).
	DriftQuantile float64
	// DriftThreshold triggers a retrain when the recent DriftQuantile
	// error exceeds this multiple of the model's training-time baseline
	// (default 2).
	DriftThreshold float64
	// MinBaselineError floors the baseline so a near-perfect training
	// fit does not make the detector hair-triggered (default 0.05).
	// Models without a stamped baseline use the floor alone.
	MinBaselineError float64
	// MinWindow is the minimum window fill before drift is evaluated
	// (default min(64, WindowSize)).
	MinWindow int
	// CheckEvery evaluates drift every n-th observation per route
	// (default 32).
	CheckEvery int

	// MinObservations gates retraining: a retrain needs this many
	// buffered observations, and after an attempt the route must gather
	// this many fresh ones before the next (default 256).
	MinObservations int
	// RetrainIterations is the MART boosting budget for retrained
	// models (default 120).
	RetrainIterations int
	// TrainWorkers bounds the retrainer's worker pool (0 = GOMAXPROCS,
	// 1 = sequential): the per-operator candidate fits of a retrain fan
	// out across cores, shrinking the drift→retrain→hot-swap latency a
	// degraded model keeps serving through. Retrained models are
	// bit-identical at any worker count.
	TrainWorkers int
	// HoldoutFraction of the buffered observations is withheld from
	// training and used to validate the candidate (default 0.2).
	HoldoutFraction float64
	// MaxHoldoutError is the absolute quality gate: a candidate whose
	// mean holdout relative error exceeds it is rejected even when it
	// beats the incumbent — the defense against garbage actuals poisoning
	// the loop (default 0.5).
	MaxHoldoutError float64

	// Logf, when set, receives one line per notable event (drift
	// detected, retrain accepted/rejected, replay summary).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 4 << 20
	}
	if out.Shards <= 0 {
		out.Shards = 1
	}
	if out.WindowSize <= 0 {
		out.WindowSize = 512
	}
	if out.PerOpWindowSize <= 0 {
		out.PerOpWindowSize = 256
	}
	if out.BufferCap <= 0 {
		out.BufferCap = 8192
	}
	if out.DriftQuantile <= 0 || out.DriftQuantile > 1 {
		out.DriftQuantile = 0.9
	}
	if out.DriftThreshold <= 0 {
		out.DriftThreshold = 2
	}
	if out.MinBaselineError <= 0 {
		out.MinBaselineError = 0.05
	}
	if out.MinWindow <= 0 {
		out.MinWindow = 64
	}
	if out.MinWindow > out.WindowSize {
		out.MinWindow = out.WindowSize
	}
	if out.CheckEvery <= 0 {
		out.CheckEvery = 32
	}
	if out.MinObservations <= 0 {
		out.MinObservations = 256
	}
	if out.BufferCap < out.MinObservations {
		out.BufferCap = out.MinObservations
	}
	if out.RetainSegments == 0 {
		out.RetainSegments = 8
	}
	if out.MaxRoutes <= 0 {
		out.MaxRoutes = 64
	}
	if out.ExemplarK == 0 {
		out.ExemplarK = 32
	} else if out.ExemplarK < 0 {
		out.ExemplarK = 0
	}
	if out.RetrainIterations <= 0 {
		out.RetrainIterations = 120
	}
	if out.HoldoutFraction <= 0 || out.HoldoutFraction >= 1 {
		out.HoldoutFraction = 0.2
	}
	if out.MaxHoldoutError <= 0 {
		out.MaxHoldoutError = 0.5
	}
	return out
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}
