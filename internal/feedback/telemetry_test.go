package feedback

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
)

// newBareLoop builds an in-memory loop for unit-testing the drift
// state machine and telemetry snapshots without log or publisher
// machinery unless supplied.
func newBareLoop(t *testing.T, opts Options) *Loop {
	t.Helper()
	l, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestDriftBaseline pins the baseline selection rules: the floor alone
// without a model, the baseline quantile matching the configured drift
// quantile with one, and the floor winning over a near-perfect fit.
func TestDriftBaseline(t *testing.T) {
	l := newBareLoop(t, Options{MinBaselineError: 0.05, DriftQuantile: 0.9})
	if got := l.driftBaseline(nil); got != 0.05 {
		t.Fatalf("baseline without estimator = %v, want floor 0.05", got)
	}
	est := &core.Estimator{Baseline: &core.ErrorBaseline{P50: 0.1, P90: 0.3}}
	if got := l.driftBaseline(est); got != 0.3 {
		t.Fatalf("P90-quantile baseline = %v, want 0.3", got)
	}
	if got := l.driftBaseline(&core.Estimator{}); got != 0.05 {
		t.Fatalf("baseline with nil ErrorBaseline = %v, want floor", got)
	}
	tiny := &core.Estimator{Baseline: &core.ErrorBaseline{P50: 0.001, P90: 0.002}}
	if got := l.driftBaseline(tiny); got != 0.05 {
		t.Fatalf("near-perfect fit baseline = %v, want floor 0.05", got)
	}

	median := newBareLoop(t, Options{MinBaselineError: 0.05, DriftQuantile: 0.5})
	if got := median.driftBaseline(est); got != 0.1 {
		t.Fatalf("P50-quantile baseline = %v, want 0.1", got)
	}
}

// TestDriftingStateMachine drives the detector through its states:
// silent while the window is underfilled, silent while errors sit at
// the baseline, firing once the windowed quantile crosses
// DriftThreshold x baseline, and recovering when errors subside.
func TestDriftingStateMachine(t *testing.T) {
	l := newBareLoop(t, Options{
		WindowSize:       16,
		MinWindow:        8,
		DriftQuantile:    0.9,
		DriftThreshold:   2,
		MinBaselineError: 0.05, // threshold = 0.1
	})
	st := l.route(routeKey{schema: "s", resource: plan.CPUTime})

	for i := 0; i < 7; i++ {
		st.window.Add(5.0) // grossly wrong, but window underfilled
	}
	if l.drifting(st, nil) {
		t.Fatal("detector fired below MinWindow fill")
	}
	st.window.Add(5.0)
	if !l.drifting(st, nil) {
		t.Fatal("detector silent at MinWindow fill with errors 50x threshold")
	}

	st.window.Reset()
	for i := 0; i < 16; i++ {
		st.window.Add(0.05) // at baseline: healthy
	}
	if l.drifting(st, nil) {
		t.Fatal("detector fired on baseline-level errors")
	}
	for i := 0; i < 16; i++ {
		st.window.Add(0.2) // 2x past threshold, fills whole window
	}
	if !l.drifting(st, nil) {
		t.Fatal("detector silent past threshold")
	}

	// A better-trained baseline raises the bar: same window, larger
	// baseline, no drift.
	good := &core.Estimator{Baseline: &core.ErrorBaseline{P50: 0.1, P90: 0.15}}
	if l.drifting(st, good) {
		t.Fatal("detector ignored the model's own baseline")
	}
}

// TestRetrainEligible walks every gate of the retrain trigger:
// publisher present, no retrain in flight, buffer depth, and the
// fresh-observation cooldown after an attempt.
func TestRetrainEligible(t *testing.T) {
	opts := Options{MinObservations: 4, Publisher: &stubPublisher{}}
	l := newBareLoop(t, opts)
	st := l.route(routeKey{schema: "s", resource: plan.CPUTime})

	if l.retrainEligible(st) {
		t.Fatal("eligible with empty buffer")
	}
	for i := 0; i < 4; i++ {
		st.push(&Observation{}, l.opts.BufferCap)
	}
	st.count = 4
	if !l.retrainEligible(st) {
		t.Fatal("not eligible with full buffer, idle trainer, elapsed cooldown")
	}

	st.retraining = true
	if l.retrainEligible(st) {
		t.Fatal("eligible while a retrain is in flight")
	}
	st.retraining = false

	st.lastAttempt = 2 // only 2 fresh since last attempt, need 4
	if l.retrainEligible(st) {
		t.Fatal("eligible during cooldown")
	}
	st.count = 6 // cooldown elapsed
	if !l.retrainEligible(st) {
		t.Fatal("not eligible after cooldown elapsed")
	}

	bare := newBareLoop(t, Options{MinObservations: 4})
	bst := bare.route(routeKey{schema: "s", resource: plan.CPUTime})
	for i := 0; i < 4; i++ {
		bst.push(&Observation{}, bare.opts.BufferCap)
	}
	bst.count = 4
	if bare.retrainEligible(bst) {
		t.Fatal("eligible without a publisher")
	}
}

// TestCodecRequestIDRoundTrip pins the versioning contract of the
// request-ID field: absent IDs encode as version 1 (byte-identical to
// pre-request-ID writers), present IDs as version 2, and both decode.
func TestCodecRequestIDRoundTrip(t *testing.T) {
	p := executedPlans(t, 15, 1)[0]
	base := &Observation{Schema: "tpch", Resource: plan.CPUTime, Predicted: 3, Plan: p, UnixNanos: 99}

	rec1, err := EncodeObservation(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if v := rec1[recordHeader]; v != codecVersion {
		t.Fatalf("ID-less observation encoded as version %d, want %d", v, codecVersion)
	}

	withID := *base
	withID.RequestID = "req-0042"
	rec2, err := EncodeObservation(nil, &withID)
	if err != nil {
		t.Fatal(err)
	}
	if v := rec2[recordHeader]; v != codecVersionV2 {
		t.Fatalf("observation with request ID encoded as version %d, want %d", v, codecVersionV2)
	}
	// The v2 record is the v1 record plus the appended ID field: the
	// shared prefix (after the version byte and differing CRC/length
	// header) must be unchanged.
	if !bytes.Equal(rec1[recordHeader+1:], rec2[recordHeader+1:len(rec1)]) {
		t.Fatal("v2 payload does not extend the v1 layout")
	}

	out, _ := decodeOne(t, rec2)
	if out.RequestID != "req-0042" {
		t.Fatalf("request ID round trip: got %q", out.RequestID)
	}
	out1, _ := decodeOne(t, rec1)
	if out1.RequestID != "" {
		t.Fatalf("v1 record decoded with request ID %q", out1.RequestID)
	}

	// Truncating the ID tail must fail decode, not silently drop it.
	payload := append([]byte(nil), rec2[recordHeader:]...)
	if _, err := DecodeObservation(payload[:len(payload)-3]); err == nil {
		t.Fatal("truncated request-ID tail decoded")
	}

	long := *base
	long.RequestID = strings.Repeat("x", maxRequestIDLen)
	if _, err := EncodeObservation(nil, &long); err == nil {
		t.Fatal("encoded oversized request ID")
	}
	if err := long.validate(); err == nil {
		t.Fatal("validated oversized request ID")
	}
}

// TestExemplarStore exercises the bounded top-K store directly:
// admission below capacity, min-eviction at capacity, rejection of
// non-qualifying offers, and worst-first snapshot order.
func TestExemplarStore(t *testing.T) {
	s := &exemplarStore{cap: 3}
	if !s.qualifies(0.1) {
		t.Fatal("empty store rejected a candidate")
	}
	for _, abs := range []float64{1, 3, 2} {
		s.offer(&Exemplar{AbsLogRatio: abs, UnixNanos: int64(abs)})
	}
	s.offer(&Exemplar{AbsLogRatio: 5, UnixNanos: 5}) // evicts 1
	s.offer(&Exemplar{AbsLogRatio: 0.5})             // below min, dropped
	got := s.snapshot()
	if len(got) != 3 || got[0].AbsLogRatio != 5 || got[1].AbsLogRatio != 3 || got[2].AbsLogRatio != 2 {
		t.Fatalf("snapshot = %+v, want [5 3 2]", got)
	}
	if s.qualifies(1.5) {
		t.Fatal("qualifies below the kept minimum")
	}
	if !s.qualifies(10) {
		t.Fatal("does not qualify above the kept minimum")
	}
	if s.qualifies(math.NaN()) || s.qualifies(0) {
		t.Fatal("non-positive magnitude qualified")
	}

	disabled := &exemplarStore{cap: 0}
	disabled.offer(&Exemplar{AbsLogRatio: 9})
	if disabled.qualifies(9) || len(disabled.snapshot()) != 0 {
		t.Fatal("disabled store captured an exemplar")
	}
}

// TestLoopAccuracyTelemetry drives a loop with known mispredictions and
// checks the cumulative accuracy surfaces: the signed log-ratio
// quantiles, the coverage counters, the drift-state export, and the
// worst-prediction exemplars with their request IDs.
func TestLoopAccuracyTelemetry(t *testing.T) {
	plans := executedPlans(t, 16, 12)
	l := newBareLoop(t, Options{ExemplarK: 4, WindowSize: 32, MinWindow: 8})

	// Half the traffic predicts exactly, half over-predicts 8x: coverage
	// is 50% at both bands, the error histogram is half zeros and half
	// +ln 8, and the worst exemplars are all 8x cases.
	for i, p := range plans {
		actual := p.TotalActual().Get(plan.CPUTime)
		pred := actual
		id := ""
		if i%2 == 1 {
			pred = 8 * actual
			id = "req-bad"
		}
		err := l.Observe(&Observation{
			Schema: "tpch", Resource: plan.CPUTime,
			Predicted: pred, Plan: p, RequestID: id,
		})
		if err != nil {
			t.Fatalf("Observe(%d): %v", i, err)
		}
	}

	snaps := l.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d routes, want 1", len(snaps))
	}
	rs := snaps[0]
	if rs.ErrorLogRatio == nil {
		t.Fatal("no error_log_ratio on an observed route")
	}
	// Exact predictions (log ratio 0) count on the over side by the
	// histogram's e >= 0 convention.
	if rs.ErrorLogRatio.Count != 12 || rs.ErrorLogRatio.Over != 12 || rs.ErrorLogRatio.Under != 0 {
		t.Fatalf("error counts = %+v, want count 12, all over-side", rs.ErrorLogRatio)
	}
	ln8 := math.Log(8)
	if got := rs.ErrorLogRatio.P90; math.Abs(got-ln8)/ln8 > 0.15 {
		t.Fatalf("p90 = %v, want about ln 8 = %v", got, ln8)
	}
	if got := rs.ErrorLogRatio.MaxAbs; math.Abs(got-ln8)/ln8 > 0.15 {
		t.Fatalf("max_abs = %v, want about ln 8", got)
	}
	if rs.Coverage == nil || rs.Coverage.Total != 12 || rs.Coverage.Within15x != 6 || rs.Coverage.Within2x != 6 {
		t.Fatalf("coverage = %+v, want 6/12 in both bands", rs.Coverage)
	}
	if rs.Drift == nil {
		t.Fatal("no drift state on an observed route")
	}
	if rs.Drift.MinWindow != 8 || rs.Drift.WindowFill != 12 || rs.Drift.Threshold <= 0 {
		t.Fatalf("drift state = %+v", rs.Drift)
	}
	if rs.Drift.RetrainEligible {
		t.Fatal("retrain eligible without a publisher")
	}

	ex := l.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("kept %d exemplars, want ExemplarK = 4", len(ex))
	}
	for i, e := range ex {
		if math.Abs(e.AbsLogRatio-ln8)/ln8 > 1e-9 {
			t.Fatalf("exemplar %d ranked by %v, want ln 8", i, e.AbsLogRatio)
		}
		if e.RequestID != "req-bad" {
			t.Fatalf("exemplar %d request ID = %q", i, e.RequestID)
		}
		if len(e.Plan) == 0 {
			t.Fatalf("exemplar %d has no plan wire form", i)
		}
		if e.Predicted <= 0 || e.Actual <= 0 || e.Predicted < 7.9*e.Actual {
			t.Fatalf("exemplar %d sides = %v/%v", i, e.Predicted, e.Actual)
		}
	}
}
