package feedback

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/stats"
)

// stubPublisher is an in-memory stand-in for the serving registry.
type stubPublisher struct {
	mu      sync.Mutex
	est     *core.Estimator
	version uint64
}

func (s *stubPublisher) CurrentEstimator(schema string, r plan.ResourceKind) (*core.Estimator, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.est == nil || s.est.Resource != r {
		return nil, 0, false
	}
	return s.est, s.version, true
}

func (s *stubPublisher) PublishEstimator(schema string, est *core.Estimator) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.est = est
	s.version++
	return s.version
}

func (s *stubPublisher) current() (*core.Estimator, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est, s.version
}

// trainStale trains an estimator on executed plans and installs it in
// the publisher as version 1.
func trainStale(t testing.TB, pub *stubPublisher, plans []*plan.Plan) *core.Estimator {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Mart.Iterations = 50
	est, err := core.TrainFromObservations(plans, plan.CPUTime, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pub.PublishEstimator("tpch", est)
	return est
}

// scaleActuals multiplies every node's measured CPU by factor —
// simulating a regime change (new hardware, contention, data growth)
// the frozen model knows nothing about.
func scaleActuals(plans []*plan.Plan, factor float64) {
	for _, p := range plans {
		p.Walk(func(n *plan.Node) { n.Actual.CPU *= factor })
	}
}

func meanPlanErr(est *core.Estimator, plans []*plan.Plan) float64 {
	var sum float64
	for _, p := range plans {
		sum += stats.L1RelErr(est.PredictPlan(p), p.TotalActual().CPU)
	}
	return sum / float64(len(plans))
}

func driftOptions(pub *stubPublisher, dir string) Options {
	return Options{
		Dir:               dir,
		Publisher:         pub,
		WindowSize:        96,
		MinWindow:         32,
		CheckEvery:        8,
		MinObservations:   64,
		RetrainIterations: 50,
		MaxHoldoutError:   1.0,
		DriftThreshold:    2,
	}
}

// TestLoopDriftRetrainPublish is the package-level version of the
// acceptance scenario: a stale model, a drifted observation stream, and
// the loop must detect, retrain, validate and publish — improving error
// on the drifted workload by at least 2x.
func TestLoopDriftRetrainPublish(t *testing.T) {
	trainPlans := executedPlans(t, 41, 72)
	pub := &stubPublisher{}
	stale := trainStale(t, pub, trainPlans)

	drifted := executedPlans(t, 42, 120)
	scaleActuals(drifted, 4)

	l, err := New(driftOptions(pub, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range drifted {
		if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: p}); err != nil {
			t.Fatal(err)
		}
	}
	l.Quiesce()

	cur, version := pub.current()
	if version < 2 {
		t.Fatalf("no retrained model published (still v%d)", version)
	}
	if cur.Baseline == nil {
		t.Fatal("retrained model has no baseline for the next drift cycle")
	}
	staleErr := meanPlanErr(stale, drifted)
	newErr := meanPlanErr(cur, drifted)
	if staleErr < 1 {
		t.Fatalf("drift setup broken: stale model error only %.3f", staleErr)
	}
	if newErr*2 > staleErr {
		t.Fatalf("retrain did not improve ≥2x: stale %.3f, retrained %.3f", staleErr, newErr)
	}

	// The swap reset the error windows (they described the replaced
	// version); post-swap traffic repopulates the gauges against the new
	// model.
	extra := executedPlans(t, 46, 12)
	scaleActuals(extra, 4)
	for _, p := range extra {
		if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: p}); err != nil {
			t.Fatal(err)
		}
	}
	l.Quiesce()

	snaps := l.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d routes, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Schema != "tpch" || s.Resource != "CPU" {
		t.Fatalf("snapshot route %s/%s", s.Schema, s.Resource)
	}
	if s.Retrains < 1 || s.Rejections != 0 {
		t.Fatalf("retrains %d rejections %d, want ≥1 and 0", s.Retrains, s.Rejections)
	}
	if s.LastVersion != version {
		t.Fatalf("snapshot last version %d, registry at %d", s.LastVersion, version)
	}
	if s.Observations != uint64(len(drifted)+len(extra)) {
		t.Fatalf("snapshot observations %d, want %d", s.Observations, len(drifted)+len(extra))
	}
	if len(s.PerOperator) == 0 {
		t.Fatal("no per-operator gauges")
	}
	if s.Baseline == nil {
		t.Fatal("snapshot missing current model baseline")
	}
	// Post-swap errors on the drifted workload must read healthy.
	if s.Window.Count != len(extra) || s.Window.Mean > 1 {
		t.Fatalf("post-swap window unhealthy: %+v", s.Window)
	}
}

// TestLoopRejectsGarbageActuals feeds observations whose actuals are
// irreducible noise. The drift detector fires (errors are huge), the
// retrainer runs — and the reject-if-worse guard must refuse to publish
// a model fitted to garbage, leaving the incumbent serving.
func TestLoopRejectsGarbageActuals(t *testing.T) {
	trainPlans := executedPlans(t, 41, 72)
	pub := &stubPublisher{}
	stale := trainStale(t, pub, trainPlans)
	_, before := pub.current()

	garbage := executedPlans(t, 43, 120)
	rng := rand.New(rand.NewSource(99))
	for _, p := range garbage {
		nodes := p.Nodes()
		// Log-uniform totals over six decades, uncorrelated with the
		// plan: no model can fit these, including one trained on them.
		total := math.Pow(10, rng.Float64()*6)
		for _, n := range nodes {
			n.Actual.CPU = total / float64(len(nodes))
		}
	}

	l, err := New(driftOptions(pub, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range garbage {
		if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: p}); err != nil {
			t.Fatal(err)
		}
	}
	l.Quiesce()

	cur, after := pub.current()
	if after != before {
		t.Fatalf("garbage observations published a model: v%d -> v%d", before, after)
	}
	if cur != stale {
		t.Fatal("incumbent estimator replaced")
	}
	s := l.Snapshot()[0]
	if s.Rejections < 1 {
		t.Fatalf("no rejection recorded: %+v", s)
	}
	if s.Retrains != 0 {
		t.Fatalf("%d retrains accepted on garbage", s.Retrains)
	}
}

// TestLoopReplayWarmsState restarts a loop over an existing log: the
// retraining buffer and counters must be rebuilt from disk.
func TestLoopReplayWarmsState(t *testing.T) {
	dir := t.TempDir()
	plans := executedPlans(t, 44, 20)
	l, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		err := l.Observe(&Observation{
			Schema:    "tpch",
			Resource:  plan.LogicalIO,
			Predicted: float64(100 + i),
			Plan:      p,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.LogicalIO, Plan: plans[0]}); err != ErrClosed {
		t.Fatalf("observe after close: %v, want ErrClosed", err)
	}

	l2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snaps := l2.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("replayed snapshot has %d routes", len(snaps))
	}
	s := snaps[0]
	if s.Observations != uint64(len(plans)) || s.Buffered != len(plans) {
		t.Fatalf("replay restored %d observations (%d buffered), want %d", s.Observations, s.Buffered, len(plans))
	}
	if s.Window.Count != len(plans) || s.Window.Mean <= 0 {
		t.Fatalf("replay did not rebuild the error window: %+v", s.Window)
	}

	l3, err := New(Options{Dir: dir, SkipReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(l3.Snapshot()) != 0 {
		t.Fatal("SkipReplay still warmed state")
	}
}

func TestObserveValidates(t *testing.T) {
	l, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Observe(&Observation{Schema: "x", Resource: plan.CPUTime}); err == nil {
		t.Fatal("observation without plan accepted")
	}
	p := executedPlans(t, 45, 1)[0]
	unexecuted := plan.New(p.Root, "copy") // same tree, but zero out actuals below
	unexecuted.Walk(func(n *plan.Node) { n.Actual = plan.Resources{} })
	if err := l.Observe(&Observation{Schema: "x", Resource: plan.CPUTime, Plan: unexecuted}); err == nil {
		t.Fatal("observation without actuals accepted")
	}
	huge := &Observation{Schema: string(make([]byte, maxSchemaLen)), Resource: plan.CPUTime, Plan: p}
	if err := l.Observe(huge); !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversized schema: %v, want ErrInvalid", err)
	}
}

// TestLoopResetsWindowsOnOutOfBandSwap: when the serving model changes
// without the loop's involvement (rollback, POST /models), the error
// windows — which described the replaced version — must reset rather
// than fire a drift retrain that would override the operator's swap.
func TestLoopResetsWindowsOnOutOfBandSwap(t *testing.T) {
	plans := executedPlans(t, 47, 40)
	pub := &stubPublisher{}
	trainStale(t, pub, plans[:20])

	opts := driftOptions(pub, "")
	opts.MinObservations = 1 << 30 // never retrain; window behavior under test
	l, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	drifted := plans[20:]
	scaleActuals(drifted, 4)
	for _, p := range drifted[:15] {
		if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: p}); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Snapshot()[0]; s.Window.Count != 15 {
		t.Fatalf("window count %d before swap, want 15", s.Window.Count)
	}

	// Out-of-band swap: a new version appears without the loop knowing.
	trainStale(t, pub, plans[:20])
	for _, p := range drifted[15:17] {
		if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: p}); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Snapshot()[0]
	if s.Window.Count != 2 {
		t.Fatalf("window count %d after out-of-band swap, want 2 (reset + fresh observations)", s.Window.Count)
	}
	if s.Observations != 17 {
		t.Fatalf("observation counter %d, want 17 (reset must not erase totals)", s.Observations)
	}
}

// TestLoopBoundsRoutes: spraying distinct schema names must not grow
// per-route state without bound — new routes beyond MaxRoutes are
// rejected as invalid before reaching the log.
func TestLoopBoundsRoutes(t *testing.T) {
	p := executedPlans(t, 48, 1)[0]
	l, err := New(Options{MaxRoutes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		obs := &Observation{Schema: string(rune('a' + i)), Resource: plan.CPUTime, Predicted: 1, Plan: p}
		if err := l.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	err = l.Observe(&Observation{Schema: "one-too-many", Resource: plan.CPUTime, Predicted: 1, Plan: p})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("route beyond cap: %v, want ErrInvalid", err)
	}
	// Existing routes keep working at the cap.
	if err := l.Observe(&Observation{Schema: "a", Resource: plan.CPUTime, Predicted: 1, Plan: p}); err != nil {
		t.Fatalf("existing route rejected at cap: %v", err)
	}
	if got := len(l.Snapshot()); got != 4 {
		t.Fatalf("%d routes tracked, want 4", got)
	}
}
