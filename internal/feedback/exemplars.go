package feedback

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
)

// Worst-prediction exemplars: a bounded store of the top-K largest
// mispredictions seen by the loop, ranked by the magnitude of the
// signed log-ratio error |ln(predicted/actual)|. Where the error
// histograms say *how wrong* the model is in aggregate, the exemplars
// say *on what*: each keeps the plan's wire form, the per-node feature
// vectors the model saw, both sides of the comparison, and the serving
// request ID so the case can be joined with slow-request traces and
// request logs. Dumped at GET /debug/exemplars on the debug listener.

// ExemplarNode is one operator of an exemplar plan: the feature vector
// the model evaluated and its per-node prediction vs. measurement.
type ExemplarNode struct {
	Op        string    `json:"op"`
	Features  []float64 `json:"features"`
	Predicted float64   `json:"predicted"`
	Actual    float64   `json:"actual"`
}

// Exemplar is one captured worst-case misprediction.
type Exemplar struct {
	Schema       string  `json:"schema"`
	Resource     string  `json:"resource"`
	RequestID    string  `json:"request_id,omitempty"`
	ModelVersion uint64  `json:"model_version,omitempty"`
	Predicted    float64 `json:"predicted"`
	Actual       float64 `json:"actual"`
	// AbsLogRatio is the ranking key |ln(predicted/actual)|; ln 2 means
	// a factor-of-two miss either way.
	AbsLogRatio float64 `json:"abs_log_ratio"`
	UnixNanos   int64   `json:"unix_nanos"`
	// Plan is the observed plan in the wire JSON form POST /estimate
	// accepts, so a captured worst case replays directly.
	Plan json.RawMessage `json:"plan,omitempty"`
	// Nodes carries the per-operator features and contributions, when
	// the loop had a live model to decompose the prediction with.
	Nodes []ExemplarNode `json:"nodes,omitempty"`
}

// exemplarStore keeps the top-K exemplars by AbsLogRatio. Entries are
// stored as an unordered slice with a tracked minimum — K is small
// (default 32), so a linear scan on eviction beats heap bookkeeping.
type exemplarStore struct {
	mu    sync.Mutex
	cap   int
	items []*Exemplar
}

// qualifies reports whether an error of the given magnitude would be
// kept right now — the cheap pre-check ingest runs before paying for
// plan encoding. Racy by design: a concurrent add may displace the
// slot, and offer re-checks under the lock.
func (s *exemplarStore) qualifies(abs float64) bool {
	if s.cap <= 0 || !(abs > 0) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items) < s.cap || abs > s.minAbsLocked()
}

func (s *exemplarStore) minAbsLocked() float64 {
	min := math.Inf(1)
	for _, e := range s.items {
		if e.AbsLogRatio < min {
			min = e.AbsLogRatio
		}
	}
	return min
}

// offer inserts e when it ranks within the top K, evicting the current
// smallest magnitude when full.
func (s *exemplarStore) offer(e *Exemplar) {
	if s.cap <= 0 || !(e.AbsLogRatio > 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) < s.cap {
		s.items = append(s.items, e)
		return
	}
	minIdx, minAbs := -1, math.Inf(1)
	for i, old := range s.items {
		if old.AbsLogRatio < minAbs {
			minIdx, minAbs = i, old.AbsLogRatio
		}
	}
	if e.AbsLogRatio > minAbs {
		s.items[minIdx] = e
	}
}

// snapshot returns copies of the kept exemplars, worst first.
func (s *exemplarStore) snapshot() []Exemplar {
	s.mu.Lock()
	out := make([]Exemplar, 0, len(s.items))
	for _, e := range s.items {
		out = append(out, *e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].AbsLogRatio != out[j].AbsLogRatio {
			return out[i].AbsLogRatio > out[j].AbsLogRatio
		}
		return out[i].UnixNanos < out[j].UnixNanos
	})
	return out
}

// Exemplars returns the currently kept worst-prediction exemplars,
// largest error first. The slice and its entries are copies — safe to
// serialize without holding up ingest.
func (l *Loop) Exemplars() []Exemplar {
	return l.exemplars.snapshot()
}
