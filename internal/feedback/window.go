package feedback

import (
	"sort"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/stats"
)

// Per-route (schema, resource) rolling error state: the plan-level
// window drives drift detection, the per-operator windows are
// diagnostic gauges (which operator's model went stale?), and the
// bounded observation buffer feeds the retrainer.

type routeKey struct {
	schema   string
	resource plan.ResourceKind
}

type routeState struct {
	count  uint64 // observations ever ingested for this route
	window *stats.Rolling
	perOp  map[plan.OpKind]*stats.Rolling

	// buffer is a ring of the most recent observations (retraining
	// input). next is the write position once the ring reaches capacity.
	buffer []*Observation
	next   int

	drifting    bool
	retraining  bool
	lastAttempt uint64 // count at the last retrain attempt
	retrains    uint64
	rejections  uint64
	seenVersion uint64  // serving version the windows describe
	lastVersion uint64  // last version this loop published
	lastHoldout float64 // holdout error of the last accepted model
}

func (l *Loop) route(k routeKey) *routeState {
	st, ok := l.routes[k]
	if !ok {
		st = &routeState{
			window: stats.NewRolling(l.opts.WindowSize),
			perOp:  make(map[plan.OpKind]*stats.Rolling),
		}
		l.routes[k] = st
	}
	return st
}

// push appends obs to the route's retraining ring buffer, bounded to
// limit entries. The buffer grows lazily rather than preallocating the
// bound, so a generous BufferCap costs memory proportional to traffic
// actually seen.
func (st *routeState) push(obs *Observation, limit int) {
	if len(st.buffer) < limit {
		st.buffer = append(st.buffer, obs)
		return
	}
	st.buffer[st.next] = obs
	st.next++
	if st.next == len(st.buffer) {
		st.next = 0
	}
}

// buffered returns the ring contents in arrival order.
func (st *routeState) buffered() []*Observation {
	out := make([]*Observation, 0, len(st.buffer))
	out = append(out, st.buffer[st.next:]...)
	return append(out, st.buffer[:st.next]...)
}

// resetWindows clears the error windows after a model swap: the stats
// described the replaced version, and mixing them with the new model's
// errors would stall (or falsely re-trigger) the drift detector.
func (st *routeState) resetWindows() {
	st.window.Reset()
	for _, w := range st.perOp {
		w.Reset()
	}
	st.drifting = false
}

// WindowStats summarizes one rolling error window.
type WindowStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
}

func windowStats(w *stats.Rolling) WindowStats {
	qs := w.Quantiles(0.5, 0.9, 0.95)
	return WindowStats{Count: w.Len(), Mean: w.Mean(), P50: qs[0], P90: qs[1], P95: qs[2]}
}

// OpStats is one operator's error gauge within a route.
type OpStats struct {
	Op string `json:"op"`
	WindowStats
}

// RouteStats is the exported snapshot of one (schema, resource) route —
// the per-model error gauges surfaced through the serving /metrics
// endpoint.
type RouteStats struct {
	Schema       string              `json:"schema"`
	Resource     string              `json:"resource"`
	Observations uint64              `json:"observations"`
	Buffered     int                 `json:"buffered"`
	Window       WindowStats         `json:"window"`
	Baseline     *core.ErrorBaseline `json:"baseline,omitempty"`
	Drifting     bool                `json:"drifting"`
	Retraining   bool                `json:"retraining"`
	Retrains     uint64              `json:"retrains"`
	Rejections   uint64              `json:"rejections"`
	LastVersion  uint64              `json:"last_published_version,omitempty"`
	LastHoldout  float64             `json:"last_holdout_error,omitempty"`
	PerOperator  []OpStats           `json:"per_operator,omitempty"`
}

// Snapshot returns the current per-route gauges, sorted by (schema,
// resource) for stable output.
func (l *Loop) Snapshot() []RouteStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RouteStats, 0, len(l.routes))
	for k, st := range l.routes {
		rs := RouteStats{
			Schema:       k.schema,
			Resource:     k.resource.String(),
			Observations: st.count,
			Buffered:     len(st.buffer),
			Window:       windowStats(st.window),
			Drifting:     st.drifting,
			Retraining:   st.retraining,
			Retrains:     st.retrains,
			Rejections:   st.rejections,
			LastVersion:  st.lastVersion,
			LastHoldout:  st.lastHoldout,
		}
		if l.opts.Publisher != nil {
			if est, _, ok := l.opts.Publisher.CurrentEstimator(k.schema, k.resource); ok && est.Baseline != nil {
				b := *est.Baseline
				rs.Baseline = &b
			}
		}
		ops := make([]plan.OpKind, 0, len(st.perOp))
		for op := range st.perOp {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
		for _, op := range ops {
			if w := st.perOp[op]; w.Len() > 0 {
				rs.PerOperator = append(rs.PerOperator, OpStats{Op: op.String(), WindowStats: windowStats(w)})
			}
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Schema != out[j].Schema {
			return out[i].Schema < out[j].Schema
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}
