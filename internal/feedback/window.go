package feedback

import (
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stats"
)

// Per-route (schema, resource) rolling error state: the plan-level
// window drives drift detection, the per-operator windows are
// diagnostic gauges (which operator's model went stale?), and the
// bounded observation buffer feeds the retrainer.

type routeKey struct {
	schema   string
	resource plan.ResourceKind
}

type routeState struct {
	count  uint64 // observations ever ingested for this route
	window *stats.Rolling
	perOp  map[plan.OpKind]*stats.Rolling

	// Cumulative accuracy telemetry (never reset, unlike the rolling
	// windows): the signed log-ratio error distribution at plan and
	// operator granularity, and the empirical-coverage counters behind
	// the calibration roadmap item (how often the actual landed within
	// a factor band of the prediction).
	errHist   obs.ErrorHistogram
	opErrHist map[plan.OpKind]*obs.ErrorHistogram
	covTotal  uint64
	cov15     uint64 // actual within 1.5x of predicted either way
	cov20     uint64 // actual within 2x of predicted either way

	// buffer is a ring of the most recent observations (retraining
	// input). next is the write position once the ring reaches capacity.
	buffer []*Observation
	next   int

	drifting    bool
	retraining  bool
	lastAttempt uint64 // count at the last retrain attempt
	retrains    uint64
	rejections  uint64
	seenVersion uint64  // serving version the windows describe
	lastVersion uint64  // last version this loop published
	lastHoldout float64 // holdout error of the last accepted model
}

// opHist returns (creating on first use) the operator's cumulative
// signed-error histogram. Caller holds l.mu.
func (st *routeState) opHist(k plan.OpKind) *obs.ErrorHistogram {
	h, ok := st.opErrHist[k]
	if !ok {
		h = new(obs.ErrorHistogram)
		st.opErrHist[k] = h
	}
	return h
}

func (l *Loop) route(k routeKey) *routeState {
	st, ok := l.routes[k]
	if !ok {
		st = &routeState{
			window:    stats.NewRolling(l.opts.WindowSize),
			perOp:     make(map[plan.OpKind]*stats.Rolling),
			opErrHist: make(map[plan.OpKind]*obs.ErrorHistogram),
		}
		l.routes[k] = st
	}
	return st
}

// push appends obs to the route's retraining ring buffer, bounded to
// limit entries. The buffer grows lazily rather than preallocating the
// bound, so a generous BufferCap costs memory proportional to traffic
// actually seen.
func (st *routeState) push(obs *Observation, limit int) {
	if len(st.buffer) < limit {
		st.buffer = append(st.buffer, obs)
		return
	}
	st.buffer[st.next] = obs
	st.next++
	if st.next == len(st.buffer) {
		st.next = 0
	}
}

// buffered returns the ring contents in arrival order.
func (st *routeState) buffered() []*Observation {
	out := make([]*Observation, 0, len(st.buffer))
	out = append(out, st.buffer[st.next:]...)
	return append(out, st.buffer[:st.next]...)
}

// resetWindows clears the error windows after a model swap: the stats
// described the replaced version, and mixing them with the new model's
// errors would stall (or falsely re-trigger) the drift detector.
func (st *routeState) resetWindows() {
	st.window.Reset()
	for _, w := range st.perOp {
		w.Reset()
	}
	st.drifting = false
}

// WindowStats summarizes one rolling error window.
type WindowStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func windowStats(w *stats.Rolling) WindowStats {
	qs := w.Quantiles(0.5, 0.9, 0.95, 0.99)
	return WindowStats{Count: w.Len(), Mean: w.Mean(), P50: qs[0], P90: qs[1], P95: qs[2], P99: qs[3]}
}

// ErrorQuantiles summarizes a signed log-ratio error histogram:
// quantiles are ln(predicted/actual) — negative means the model
// under-estimated — and Under/Over split the population by direction.
type ErrorQuantiles struct {
	Count  uint64  `json:"count"`
	Under  uint64  `json:"under"`
	Over   uint64  `json:"over"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	MaxAbs float64 `json:"max_abs"`
}

func errorQuantiles(h *obs.ErrorHistogram) *ErrorQuantiles {
	snap := h.Snapshot()
	s := snap.Summarize()
	if s.Count == 0 {
		return nil
	}
	return &ErrorQuantiles{
		Count: s.Count, Under: s.UnderCount, Over: s.OverCount,
		P50: s.P50, P90: s.P90, P99: s.P99, MaxAbs: s.MaxAbs,
	}
}

// CoverageStats counts how often the actual landed within a factor
// band of the prediction — the empirical-coverage groundwork for
// calibrated prediction intervals.
type CoverageStats struct {
	Total     uint64 `json:"total"`
	Within15x uint64 `json:"within_1_5x"`
	Within2x  uint64 `json:"within_2x"`
}

// DriftState is the drift detector laid open for one route: what the
// recent error is, what it is compared against, and how far the route
// sits from a retrain trigger.
type DriftState struct {
	// Baseline is the training-time error level "normal" is measured
	// from (floored by MinBaselineError).
	Baseline float64 `json:"baseline"`
	// Quantile is the configured windowed quantile under comparison.
	Quantile float64 `json:"quantile"`
	// RecentError is the window's current value at Quantile.
	RecentError float64 `json:"recent_error"`
	// Threshold is the trigger level: DriftThreshold × Baseline.
	Threshold float64 `json:"threshold"`
	// DistanceToThreshold = Threshold − RecentError; ≤ 0 means the
	// route is at or past the trigger.
	DistanceToThreshold float64 `json:"distance_to_threshold"`
	// WindowFill / MinWindow: drift is only evaluated once the window
	// holds MinWindow samples.
	WindowFill int `json:"window_fill"`
	MinWindow  int `json:"min_window"`
	// Drifting is the detector's latest verdict (sticky between
	// CheckEvery evaluations).
	Drifting bool `json:"drifting"`
	// RetrainEligible reports whether a drift finding would start a
	// retrain right now (publisher present, no retrain in flight,
	// enough buffered observations, cooldown elapsed).
	RetrainEligible bool `json:"retrain_eligible"`
}

// OpStats is one operator's error gauge within a route.
type OpStats struct {
	Op string `json:"op"`
	WindowStats
	ErrorLogRatio *ErrorQuantiles `json:"error_log_ratio,omitempty"`
}

// RouteStats is the exported snapshot of one (schema, resource) route —
// the per-model error gauges surfaced through the serving /metrics
// endpoint. Fields added after PR 6 (error_log_ratio, coverage, drift)
// are strictly additive and omitted when empty, keeping the idle
// /metrics JSON byte-identical.
type RouteStats struct {
	Schema        string              `json:"schema"`
	Resource      string              `json:"resource"`
	Observations  uint64              `json:"observations"`
	Buffered      int                 `json:"buffered"`
	Window        WindowStats         `json:"window"`
	Baseline      *core.ErrorBaseline `json:"baseline,omitempty"`
	Drifting      bool                `json:"drifting"`
	Retraining    bool                `json:"retraining"`
	Retrains      uint64              `json:"retrains"`
	Rejections    uint64              `json:"rejections"`
	LastVersion   uint64              `json:"last_published_version,omitempty"`
	LastHoldout   float64             `json:"last_holdout_error,omitempty"`
	ErrorLogRatio *ErrorQuantiles     `json:"error_log_ratio,omitempty"`
	Coverage      *CoverageStats      `json:"coverage,omitempty"`
	Drift         *DriftState         `json:"drift,omitempty"`
	PerOperator   []OpStats           `json:"per_operator,omitempty"`
}

// Snapshot returns the current per-route gauges, sorted by (schema,
// resource) for stable output.
func (l *Loop) Snapshot() []RouteStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RouteStats, 0, len(l.routes))
	for k, st := range l.routes {
		rs := RouteStats{
			Schema:       k.schema,
			Resource:     k.resource.String(),
			Observations: st.count,
			Buffered:     len(st.buffer),
			Window:       windowStats(st.window),
			Drifting:     st.drifting,
			Retraining:   st.retraining,
			Retrains:     st.retrains,
			Rejections:   st.rejections,
			LastVersion:  st.lastVersion,
			LastHoldout:  st.lastHoldout,
		}
		var est *core.Estimator
		if l.opts.Publisher != nil {
			if e, _, ok := l.opts.Publisher.CurrentEstimator(k.schema, k.resource); ok {
				est = e
				if e.Baseline != nil {
					b := *e.Baseline
					rs.Baseline = &b
				}
			}
		}
		rs.ErrorLogRatio = errorQuantiles(&st.errHist)
		if st.covTotal > 0 {
			rs.Coverage = &CoverageStats{Total: st.covTotal, Within15x: st.cov15, Within2x: st.cov20}
		}
		baseline := l.driftBaseline(est)
		threshold := l.opts.DriftThreshold * baseline
		recent := st.window.Quantile(l.opts.DriftQuantile)
		rs.Drift = &DriftState{
			Baseline:            baseline,
			Quantile:            l.opts.DriftQuantile,
			RecentError:         recent,
			Threshold:           threshold,
			DistanceToThreshold: threshold - recent,
			WindowFill:          st.window.Len(),
			MinWindow:           l.opts.MinWindow,
			Drifting:            st.drifting,
			RetrainEligible:     l.retrainEligible(st),
		}
		ops := make([]plan.OpKind, 0, len(st.perOp))
		for op := range st.perOp {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
		for _, op := range ops {
			if w := st.perOp[op]; w.Len() > 0 {
				rs.PerOperator = append(rs.PerOperator, OpStats{
					Op:            op.String(),
					WindowStats:   windowStats(w),
					ErrorLogRatio: errorQuantiles(st.opErrHist[op]),
				})
			}
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Schema != out[j].Schema {
			return out[i].Schema < out[j].Schema
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}
