package feedback

import (
	"errors"
	"math"
	"testing"

	"repro/internal/plan"
)

// TestObserveRejectsNonFiniteValues is the regression test for the
// observation-validation gap: NaN/±Inf/negative predicted values and
// NaN/±Inf/non-positive actuals used to sail through validate into the
// error windows (one NaN disarms every drift-quantile comparison) and
// the retraining buffer. Each must now fail with ErrInvalid, count in
// Rejected(), and leave the log untouched — while Predicted == 0 stays
// accepted as the documented recompute-at-ingest sentinel.
func TestObserveRejectsNonFiniteValues(t *testing.T) {
	plans := executedPlans(t, 11, 8)
	l, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	obs := func(i int, predicted float64) *Observation {
		return &Observation{Schema: "tpch", Resource: plan.CPUTime, Predicted: predicted, Plan: plans[i]}
	}

	// Baseline: a plain observation and the zero-predicted sentinel are
	// both valid.
	if err := l.Observe(obs(0, 12.5)); err != nil {
		t.Fatalf("finite positive predicted rejected: %v", err)
	}
	if err := l.Observe(obs(1, 0)); err != nil {
		t.Fatalf("zero predicted (recompute sentinel) rejected: %v", err)
	}
	if got := l.Rejected(); got != 0 {
		t.Fatalf("valid observations counted as rejected: %d", got)
	}

	badPredicted := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1}
	for _, p := range badPredicted {
		if err := l.Observe(obs(2, p)); !errors.Is(err, ErrInvalid) {
			t.Errorf("predicted %v: got %v, want ErrInvalid", p, err)
		}
	}

	// Non-finite actuals: poison one node's measurement so the plan
	// total inherits it.
	poison := func(i int, v float64) *Observation {
		plans[i].Root.Actual.CPU = v
		return &Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: plans[i]}
	}
	badActuals := []float64{math.NaN(), math.Inf(1)}
	for j, v := range badActuals {
		if err := l.Observe(poison(3+j, v)); !errors.Is(err, ErrInvalid) {
			t.Errorf("actual %v: got %v, want ErrInvalid", v, err)
		}
	}

	want := uint64(len(badPredicted) + len(badActuals))
	if got := l.Rejected(); got != want {
		t.Fatalf("Rejected() = %d, want %d", got, want)
	}
	if got := l.IngestLatency().Count; got != 2 {
		t.Fatalf("ingest count = %d, want 2 (the two valid observations)", got)
	}
}
