package feedback

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/workload"
)

// executedPlans builds a small executed workload shared by the codec,
// log and loop tests.
func executedPlans(t testing.TB, seed uint64, n int) []*plan.Plan {
	t.Helper()
	qs := workload.GenTPCH(workload.Config{Seed: seed, N: n, SFs: []float64{1, 2, 4}, Z: 2, Corr: 0.85})
	eng := engine.New(nil)
	plans := make([]*plan.Plan, len(qs))
	for i, q := range qs {
		eng.Run(q.Plan)
		plans[i] = q.Plan
	}
	return plans
}

func decodeOne(t *testing.T, rec []byte) (*Observation, int64) {
	t.Helper()
	payload, size, err := readRecord(bufio.NewReader(bytes.NewReader(rec)))
	if err != nil {
		t.Fatalf("readRecord: %v", err)
	}
	obs, err := DecodeObservation(payload)
	if err != nil {
		t.Fatalf("DecodeObservation: %v", err)
	}
	return obs, size
}

// TestObservationRoundTripProperty encodes randomized observations and
// checks every field — including the embedded plan, byte-identically via
// the plan codec's deterministic encoding — survives the round trip.
func TestObservationRoundTripProperty(t *testing.T) {
	plans := executedPlans(t, 11, 16)
	rng := rand.New(rand.NewSource(23))
	schemas := []string{"", "tpch", "tpcds", "schema-with-∆-unicode", string(make([]byte, 300))}
	for i := 0; i < 200; i++ {
		in := &Observation{
			Schema:       schemas[rng.Intn(len(schemas))],
			Resource:     plan.ResourceKind(rng.Intn(2)),
			ModelVersion: rng.Uint64(),
			Predicted:    math.Exp(rng.NormFloat64() * 20), // spans tiny..huge
			Plan:         plans[rng.Intn(len(plans))],
			UnixNanos:    rng.Int63(),
		}
		switch i % 7 {
		case 3:
			in.Predicted = 0
		case 5:
			in.Predicted = math.MaxFloat64
		}
		rec, err := EncodeObservation(nil, in)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", i, err)
		}
		out, size := decodeOne(t, rec)
		if size != int64(len(rec)) {
			t.Fatalf("iter %d: decoded %d of %d bytes", i, size, len(rec))
		}
		if out.Schema != in.Schema || out.Resource != in.Resource ||
			out.ModelVersion != in.ModelVersion || out.UnixNanos != in.UnixNanos ||
			out.Predicted != in.Predicted {
			t.Fatalf("iter %d: scalar fields changed: %+v vs %+v", i, out, in)
		}
		wantPlan, _ := plan.EncodeJSON(in.Plan)
		gotPlan, err := plan.EncodeJSON(out.Plan)
		if err != nil {
			t.Fatalf("iter %d: re-encode decoded plan: %v", i, err)
		}
		if !bytes.Equal(wantPlan, gotPlan) {
			t.Fatalf("iter %d: plan changed in round trip", i)
		}
		if out.Actual() != in.Actual() {
			t.Fatalf("iter %d: actuals changed: %v vs %v", i, out.Actual(), in.Actual())
		}
	}
}

func TestEncodeRejectsBadObservations(t *testing.T) {
	if _, err := EncodeObservation(nil, &Observation{}); err == nil {
		t.Fatal("encoded observation without plan")
	}
	p := executedPlans(t, 12, 1)[0]
	if _, err := EncodeObservation(nil, &Observation{Schema: string(make([]byte, maxSchemaLen)), Plan: p}); err == nil {
		t.Fatal("encoded oversized schema")
	}
}

// TestReadRecordDetectsCorruption damages an encoded record every way a
// crash (or bit rot) can and checks each is reported as corruption, not
// silently decoded.
func TestReadRecordDetectsCorruption(t *testing.T) {
	p := executedPlans(t, 13, 1)[0]
	rec, err := EncodeObservation(nil, &Observation{Schema: "tpch", Plan: p, Predicted: 42})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, data []byte, wantCorrupt bool) {
		t.Helper()
		_, _, err := readRecord(bufio.NewReader(bytes.NewReader(data)))
		if wantCorrupt && !errorsIsCorrupt(err) {
			t.Fatalf("%s: err = %v, want corruption", name, err)
		}
		if !wantCorrupt && err != nil {
			t.Fatalf("%s: unexpected error %v", name, err)
		}
	}
	check("intact", rec, false)
	check("torn header", rec[:7], true)
	check("torn payload", rec[:len(rec)-3], true)
	flipped := append([]byte(nil), rec...)
	flipped[len(flipped)-1] ^= 0xff
	check("flipped payload byte", flipped, true)
	badMagic := append([]byte(nil), rec...)
	badMagic[0] ^= 0xff
	check("bad magic", badMagic, true)
	badLen := append([]byte(nil), rec...)
	binary.LittleEndian.PutUint32(badLen[4:], maxRecordSize+1)
	check("implausible length", badLen, true)
}

func errorsIsCorrupt(err error) bool { return errors.Is(err, errCorrupt) }

func TestDecodeObservationRejectsBadPayloads(t *testing.T) {
	p := executedPlans(t, 14, 1)[0]
	rec, err := EncodeObservation(nil, &Observation{Schema: "tpch", Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	payload := rec[recordHeader:]
	for name, mutate := range map[string]func([]byte) []byte{
		"short":          func(b []byte) []byte { return b[:10] },
		"bad version":    func(b []byte) []byte { b[0] = 99; return b },
		"bad resource":   func(b []byte) []byte { b[1] = 7; return b },
		"truncated plan": func(b []byte) []byte { return b[:len(b)-5] },
	} {
		mutated := mutate(append([]byte(nil), payload...))
		if _, err := DecodeObservation(mutated); err == nil {
			t.Fatalf("%s payload decoded", name)
		}
	}
}
