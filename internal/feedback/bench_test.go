package feedback

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/plan"
)

// BenchmarkFeedbackIngest measures observation-log append throughput —
// the hot path POST /observe rides on — comparing a single writer
// against sharded writers under parallel load. Encode cost (plan wire
// encoding + CRC) is part of the measured path on purpose: that is what
// each ingest pays.
func BenchmarkFeedbackIngest(b *testing.B) {
	plans := executedPlans(b, 71, 16)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			l, err := OpenLog(LogOptions{Dir: b.TempDir(), Shards: shards, SegmentBytes: 64 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			var i atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := i.Add(1)
					obs := &Observation{
						Schema:       "tpch",
						Resource:     plan.CPUTime,
						ModelVersion: n,
						Predicted:    float64(n),
						Plan:         plans[n%uint64(len(plans))],
						UnixNanos:    int64(n),
					}
					if err := l.Append(obs); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "obs/s")
			}
		})
	}
}

// BenchmarkFeedbackObserve measures the full Loop ingest path: append,
// per-operator error tracking against a live model, and the periodic
// drift check.
func BenchmarkFeedbackObserve(b *testing.B) {
	plans := executedPlans(b, 72, 32)
	pub := &stubPublisher{}
	trainStale(b, pub, plans)
	l, err := New(Options{
		Dir:       b.TempDir(),
		Publisher: pub,
		// A huge retrain gate keeps the benchmark measuring ingest, not
		// background training.
		MinObservations: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := &Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: plans[i%len(plans)]}
		if err := l.Observe(obs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "obs/s")
	}
}
