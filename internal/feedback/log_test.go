package feedback

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/plan"
)

func testObservations(t testing.TB, n int) []*Observation {
	t.Helper()
	plans := executedPlans(t, 17, 12)
	obs := make([]*Observation, n)
	for i := range obs {
		obs[i] = &Observation{
			Schema:       "tpch",
			Resource:     plan.CPUTime,
			ModelVersion: uint64(i + 1),
			Predicted:    float64(i) * 1.5,
			Plan:         plans[i%len(plans)],
			UnixNanos:    int64(i + 1),
		}
	}
	return obs
}

func replayAll(t *testing.T, l *Log) []*Observation {
	t.Helper()
	var out []*Observation
	n, err := l.Replay(func(o *Observation) error {
		out = append(out, o)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("replay count %d, callbacks %d", n, len(out))
	}
	return out
}

func TestLogAppendReplayOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObservations(t, 25)
	for _, o := range obs {
		if err := l.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, l)
	if len(got) != len(obs) {
		t.Fatalf("replayed %d of %d", len(got), len(obs))
	}
	for i := range got {
		if got[i].ModelVersion != obs[i].ModelVersion || got[i].UnixNanos != obs[i].UnixNanos {
			t.Fatalf("record %d out of order: %+v", i, got[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(obs[0]); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Pruning disabled: this test asserts every record survives
	// rotation; retention is covered by TestLogRetention.
	l, err := OpenLog(LogOptions{Dir: dir, SegmentBytes: 4 << 10, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObservations(t, 64)
	for _, o := range obs {
		if err := l.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if got := replayAll(t, l); len(got) != len(obs) {
		t.Fatalf("replayed %d of %d across segments", len(got), len(obs))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected rotation to produce several segments, found %d files", len(entries))
	}
	for _, e := range entries {
		if _, _, ok := parseSegmentName(e.Name()); !ok {
			t.Fatalf("stray file %q in log directory", e.Name())
		}
	}
	l.Close()

	// Reopen appends into the newest segment without disturbing history.
	l2, err := OpenLog(LogOptions{Dir: dir, SegmentBytes: 4 << 10, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(obs[0]); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != len(obs)+1 {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(obs)+1)
	}
}

// TestLogCrashRecovery simulates a crash mid-write: a torn record at the
// tail must be truncated away on reopen, everything before it replayed,
// and appending must resume cleanly.
func TestLogCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObservations(t, 10)
	for _, o := range obs {
		if err := l.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a half-written record (header + part of a payload).
	path := filepath.Join(dir, segmentName(0, 1))
	rec, err := EncodeObservation(nil, obs[0])
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:len(rec)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	torn, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(LogOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= torn.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", torn.Size(), after.Size())
	}
	if got := replayAll(t, l2); len(got) != len(obs) {
		t.Fatalf("recovered %d of %d records", len(got), len(obs))
	}
	if err := l2.Append(obs[1]); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != len(obs)+1 {
		t.Fatalf("append after recovery: %d records, want %d", len(got), len(obs)+1)
	}
}

// TestLogCorruptMiddleStopsShard flips a byte mid-segment: replay keeps
// the prefix and drops the suffix (resyncing into a framed stream after
// damage risks fabricating records).
func TestLogCorruptMiddleStopsShard(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObservations(t, 8)
	for _, o := range obs {
		if err := l.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, segmentName(0, 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	if _, err := ReplayDir(dir, func(*Observation) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 || n >= len(obs) {
		t.Fatalf("replayed %d records from corrupt segment, want a strict prefix of %d", n, len(obs))
	}
}

func TestLogShardedConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogOptions{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	obs := testObservations(t, 16)
	const (
		writers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(obs[(w+i)%len(obs)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := replayAll(t, l); len(got) != writers*each {
		t.Fatalf("replayed %d of %d sharded appends", len(got), writers*each)
	}
}

// TestLogRetention bounds the log: old segments are pruned on rotation
// and on reopen, so replay covers a recent suffix instead of all of
// history.
func TestLogRetention(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogOptions{Dir: dir, SegmentBytes: 4 << 10, RetainSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObservations(t, 64)
	for _, o := range obs {
		if err := l.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Fatalf("%d segments on disk, want <= 2", len(entries))
	}
	got := replayAll(t, l)
	if len(got) == 0 || len(got) >= len(obs) {
		t.Fatalf("replayed %d records, want a non-empty recent suffix of %d", len(got), len(obs))
	}
	// The survivors must be the most recent records, in order.
	tail := obs[len(obs)-len(got):]
	for i := range got {
		if got[i].ModelVersion != tail[i].ModelVersion {
			t.Fatalf("record %d: version %d, want %d (not the newest suffix)", i, got[i].ModelVersion, tail[i].ModelVersion)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with tighter retention prunes the backlog immediately.
	l2, err := OpenLog(LogOptions{Dir: dir, SegmentBytes: 4 << 10, RetainSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d segments after reopen with retain=1, want 1", len(entries))
	}
}

// TestLogAdoptsOnDiskShards reopens a 4-shard directory asking for 1
// shard: the on-disk shard count wins, so no shard's segments are left
// orphaned from pruning while replay keeps reading them.
func TestLogAdoptsOnDiskShards(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(LogOptions{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObservations(t, 16)
	for _, o := range obs {
		if err := l.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := OpenLog(LogOptions{Dir: dir}) // asks for the default 1 shard
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(l2.shards) != 4 {
		t.Fatalf("reopened with %d shards, want the on-disk 4", len(l2.shards))
	}
	for _, o := range obs {
		if err := l2.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if got := replayAll(t, l2); len(got) != 2*len(obs) {
		t.Fatalf("replayed %d records, want %d", len(got), 2*len(obs))
	}
}
