package feedback

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/plan"
)

// Observation-log record framing. Each record is
//
//	uint32 magic "FBL1"
//	uint32 payload length
//	uint32 CRC-32 (IEEE) of the payload
//	payload
//
// with a fixed-layout little-endian payload:
//
//	byte    codec version (1 or 2)
//	byte    resource kind
//	uint64  model version
//	int64   unix nanos
//	float64 predicted (IEEE bits)
//	uint16  schema length, schema bytes
//	uint32  plan length, plan bytes (the plan package's wire JSON,
//	        which round-trips per-node Actual resources)
//	uint16  request-ID length, request-ID bytes (version 2 only)
//
// Version 2 appends the serving request ID after the plan; an
// observation without one still encodes as version 1, so logs written
// before the field existed and logs written by request-ID-less callers
// are byte-identical. Decode accepts both versions.
//
// The CRC makes torn or bit-rotted tail writes detectable: replay stops
// at the first record that fails the check, and the log writer truncates
// the segment back to the last valid record boundary on open — the
// crash-safety contract of the observation log.

const (
	recordMagic     = 0x46424C31 // "FBL1"
	codecVersion    = 1
	codecVersionV2  = 2
	recordHeader    = 12
	maxSchemaLen    = 1 << 16
	maxRequestIDLen = 1 << 10
	maxRecordSize   = 16 << 20
)

// errCorrupt marks framing damage (torn write, CRC mismatch, garbage).
// It is deliberately distinct from decode errors inside a CRC-valid
// payload, which indicate a writer bug rather than a crash.
var errCorrupt = errors.New("feedback: corrupt log record")

// EncodeObservation appends the framed binary record for obs to dst and
// returns the extended slice.
func EncodeObservation(dst []byte, obs *Observation) ([]byte, error) {
	if obs.Plan == nil || obs.Plan.Root == nil {
		return nil, errors.New("feedback: encode observation without plan")
	}
	if len(obs.Schema) >= maxSchemaLen {
		return nil, fmt.Errorf("feedback: schema name %d bytes long", len(obs.Schema))
	}
	if len(obs.RequestID) >= maxRequestIDLen {
		return nil, fmt.Errorf("feedback: request ID %d bytes long", len(obs.RequestID))
	}
	planBytes, err := plan.EncodeJSON(obs.Plan)
	if err != nil {
		return nil, err
	}
	// Records without a request ID stay on version 1, byte-identical to
	// what pre-request-ID writers produced.
	version := byte(codecVersion)
	extra := 0
	if obs.RequestID != "" {
		version = codecVersionV2
		extra = 2 + len(obs.RequestID)
	}
	payloadLen := 2 + 8 + 8 + 8 + 2 + len(obs.Schema) + 4 + len(planBytes) + extra
	if payloadLen > maxRecordSize {
		return nil, fmt.Errorf("feedback: observation record %d bytes exceeds limit", payloadLen)
	}
	payload := make([]byte, 0, payloadLen)
	payload = append(payload, version, byte(obs.Resource))
	payload = binary.LittleEndian.AppendUint64(payload, obs.ModelVersion)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(obs.UnixNanos))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(obs.Predicted))
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(obs.Schema)))
	payload = append(payload, obs.Schema...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(planBytes)))
	payload = append(payload, planBytes...)
	if version == codecVersionV2 {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(obs.RequestID)))
		payload = append(payload, obs.RequestID...)
	}

	dst = binary.LittleEndian.AppendUint32(dst, recordMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...), nil
}

// DecodeObservation parses a record payload (CRC already verified).
func DecodeObservation(payload []byte) (*Observation, error) {
	if len(payload) < 2+8+8+8+2 {
		return nil, errors.New("feedback: truncated observation payload")
	}
	version := payload[0]
	if version != codecVersion && version != codecVersionV2 {
		return nil, fmt.Errorf("feedback: unsupported observation codec version %d", version)
	}
	obs := &Observation{Resource: plan.ResourceKind(payload[1])}
	if obs.Resource != plan.CPUTime && obs.Resource != plan.LogicalIO {
		return nil, fmt.Errorf("feedback: unknown resource kind %d", payload[1])
	}
	p := payload[2:]
	obs.ModelVersion = binary.LittleEndian.Uint64(p)
	obs.UnixNanos = int64(binary.LittleEndian.Uint64(p[8:]))
	obs.Predicted = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
	schemaLen := int(binary.LittleEndian.Uint16(p[24:]))
	p = p[26:]
	if len(p) < schemaLen+4 {
		return nil, errors.New("feedback: truncated schema field")
	}
	obs.Schema = string(p[:schemaLen])
	p = p[schemaLen:]
	planLen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if version == codecVersion {
		if len(p) != planLen {
			return nil, fmt.Errorf("feedback: plan field %d bytes, header says %d", len(p), planLen)
		}
	} else if len(p) < planLen+2 {
		return nil, fmt.Errorf("feedback: plan field %d bytes, header says %d plus request ID", len(p), planLen)
	}
	pl, err := plan.DecodeJSON(p[:planLen])
	if err != nil {
		return nil, err
	}
	obs.Plan = pl
	if version == codecVersionV2 {
		p = p[planLen:]
		idLen := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) != idLen {
			return nil, fmt.Errorf("feedback: request-ID field %d bytes, header says %d", len(p), idLen)
		}
		obs.RequestID = string(p)
	}
	return obs, nil
}

// readRecord reads one framed record from br, returning its payload and
// total encoded size. io.EOF marks a clean record boundary; errCorrupt
// (possibly wrapped) marks a torn or damaged tail.
func readRecord(br *bufio.Reader) (payload []byte, size int64, err error) {
	var header [recordHeader]byte
	if _, err := io.ReadFull(br, header[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF // clean end
		}
		return nil, 0, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if _, err := io.ReadFull(br, header[1:]); err != nil {
		return nil, 0, fmt.Errorf("%w: torn header: %v", errCorrupt, err)
	}
	if magic := binary.LittleEndian.Uint32(header[0:]); magic != recordMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %#x", errCorrupt, magic)
	}
	n := binary.LittleEndian.Uint32(header[4:])
	if n == 0 || n > maxRecordSize {
		return nil, 0, fmt.Errorf("%w: implausible payload length %d", errCorrupt, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: torn payload: %v", errCorrupt, err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(header[8:]) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", errCorrupt)
	}
	return payload, recordHeader + int64(n), nil
}
