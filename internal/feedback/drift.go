package feedback

import "repro/internal/core"

// Drift detection: the model is drifting when the recent windowed
// error quantile exceeds DriftThreshold × its training-time baseline.
//
// The baseline is the error the model achieved on the workload it was
// trained on (core.ErrorBaseline, stamped by TrainFromObservations and
// persisted with the model). Comparing against the model's own
// training-time accuracy — rather than a fixed absolute error bar —
// makes the detector robust across resources and workloads: a CPU model
// that trains to 8% error drifts at materially different absolute
// errors than an I/O model that trains to 30%. MinBaselineError floors
// the comparison so a near-perfect fit does not make the detector fire
// on noise, and doubles as the whole baseline for models that predate
// baselines (nil Baseline).

// driftBaseline returns the error level "normal" is measured from,
// picking the baseline quantile nearest the configured DriftQuantile so
// like is compared with like (a median window against a P90 baseline
// would mask genuine drift).
func (l *Loop) driftBaseline(est *core.Estimator) float64 {
	base := l.opts.MinBaselineError
	if est != nil && est.Baseline != nil {
		b := est.Baseline.P90
		if l.opts.DriftQuantile < 0.7 {
			b = est.Baseline.P50
		}
		if b > base {
			base = b
		}
	}
	return base
}

// drifting evaluates the detector for one route. Caller holds l.mu.
func (l *Loop) drifting(st *routeState, est *core.Estimator) bool {
	if st.window.Len() < l.opts.MinWindow {
		return false
	}
	return st.window.Quantile(l.opts.DriftQuantile) > l.opts.DriftThreshold*l.driftBaseline(est)
}

// retrainEligible reports whether a drift finding should start a
// retrain now: enough buffered observations to learn from, no retrain
// already in flight, and a cooldown of MinObservations fresh
// observations since the last attempt (so a rejected candidate does not
// spin the trainer on the same data). Caller holds l.mu.
func (l *Loop) retrainEligible(st *routeState) bool {
	if l.opts.Publisher == nil || st.retraining {
		return false
	}
	if len(st.buffer) < l.opts.MinObservations {
		return false
	}
	return st.count-st.lastAttempt >= uint64(l.opts.MinObservations)
}
