package feedback

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/plan"
)

// TestRetrainParallelWhileServing is the retrain-while-serving race
// scenario for the parallel training pipeline: a drift-triggered
// retrain fans its fits across TrainWorkers workers while concurrent
// readers hammer whatever estimator the publisher currently serves —
// the incumbent during the retrain, the freshly hot-swapped candidate
// after it. Run under -race in CI, this pins the contract that the
// training pool touches only its own buffers and never the serving
// path's shared state.
func TestRetrainParallelWhileServing(t *testing.T) {
	trainPlans := executedPlans(t, 51, 72)
	pub := &stubPublisher{}
	trainStale(t, pub, trainPlans)

	drifted := executedPlans(t, 52, 120)
	scaleActuals(drifted, 4)

	opts := driftOptions(pub, "")
	opts.TrainWorkers = 4
	l, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Serving traffic: readers predict against the live estimator for
	// the whole observe→drift→retrain→publish window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	queryPlans := executedPlans(t, 53, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink float64
			for i := 0; ; i++ {
				select {
				case <-stop:
					_ = sink
					return
				default:
				}
				est, _, ok := pub.CurrentEstimator("tpch", plan.CPUTime)
				if !ok {
					t.Error("no estimator while serving")
					return
				}
				p := queryPlans[i%len(queryPlans)]
				sink += est.PredictPlan(p)
				vecs := features.ExtractPlan(p, est.Mode)
				for j, n := range p.Nodes() {
					sink += est.PredictVector(n.Kind, &vecs[j])
				}
			}
		}()
	}

	for _, p := range drifted {
		if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: p}); err != nil {
			t.Fatal(err)
		}
	}
	l.Quiesce()
	close(stop)
	wg.Wait()

	if _, version := pub.current(); version < 2 {
		t.Fatalf("parallel retrain never published (still v%d)", version)
	}
}

// TestRetrainBitIdenticalAcrossTrainWorkers: the retrainer's candidate
// must not depend on TrainWorkers — same observations, same incumbent,
// same published model bytes at any pool size.
func TestRetrainBitIdenticalAcrossTrainWorkers(t *testing.T) {
	drifted := executedPlans(t, 54, 96)
	scaleActuals(drifted, 3)

	trainOnce := func(workers int) *core.Estimator {
		pub := &stubPublisher{}
		trainStale(t, pub, executedPlans(t, 51, 72))
		opts := driftOptions(pub, "")
		opts.TrainWorkers = workers
		l, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for _, p := range drifted {
			if err := l.Observe(&Observation{Schema: "tpch", Resource: plan.CPUTime, Plan: p}); err != nil {
				t.Fatal(err)
			}
		}
		l.Quiesce()
		est, version := pub.current()
		if version < 2 {
			t.Fatalf("workers=%d: no retrain published", workers)
		}
		return est
	}

	want := encodeEstimator(t, trainOnce(1))
	for _, w := range []int{2, 7} {
		if got := encodeEstimator(t, trainOnce(w)); !bytes.Equal(got, want) {
			t.Fatalf("TrainWorkers=%d: retrained model differs from sequential", w)
		}
	}
}

func encodeEstimator(t *testing.T, est *core.Estimator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
