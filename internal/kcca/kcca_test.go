package kcca

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func TestPlanFeaturesShape(t *testing.T) {
	cfg := workload.Config{Seed: 31, N: 12, SFs: []float64{1}, Z: 2, Corr: 0.85}
	for _, q := range workload.GenTPCH(cfg) {
		v := PlanFeatures(q.Plan)
		var opCount float64
		for i := 0; i < len(v)/2; i++ {
			opCount += v[i]
		}
		if int(opCount) != q.Plan.NumNodes() {
			t.Fatalf("op counts sum to %v, plan has %d nodes", opCount, q.Plan.NumNodes())
		}
	}
}

func TestNearestNeighborRecall(t *testing.T) {
	// k=1 prediction on a training point returns its own target.
	rng := xrand.New(1)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, []float64{rng.Range(0, 100), rng.Range(0, 100)})
		ys = append(ys, rng.Range(1, 1000))
	}
	m, err := Train(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := m.Predict(xs[i]); math.Abs(got-ys[i]) > 1e-9 {
			t.Fatalf("1-NN on training point: %v, want %v", got, ys[i])
		}
	}
}

func TestPredictionsBoundedByTrainingMax(t *testing.T) {
	// The defining failure mode (§1.1): estimates can never exceed the
	// largest training observation, no matter the query.
	rng := xrand.New(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		v := rng.Range(0, 10)
		xs = append(xs, []float64{v})
		ys = append(ys, 100*v)
	}
	m, err := Train(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxY := m.MaxTrainTarget()
	huge := m.Predict([]float64{1e6})
	if huge > maxY {
		t.Fatalf("kNN predicted %v beyond training max %v", huge, maxY)
	}
}

func TestKAveraging(t *testing.T) {
	xs := [][]float64{{0}, {1}, {100}}
	ys := []float64{10, 20, 900}
	m, err := Train(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Near 0.5 the two nearest are the first two points.
	if got := m.Predict([]float64{0.5}); math.Abs(got-15) > 1e-9 {
		t.Fatalf("2-NN average = %v, want 15", got)
	}
}

func TestEndToEndOnWorkload(t *testing.T) {
	cfg := workload.Config{Seed: 33, N: 60, SFs: []float64{1, 2}, Z: 2, Corr: 0.85}
	qs := workload.GenTPCH(cfg)
	eng := engine.New(nil)
	var xs [][]float64
	var ys []float64
	for _, q := range qs {
		r := eng.Run(q.Plan)
		xs = append(xs, PlanFeatures(q.Plan))
		ys = append(ys, r.CPU)
	}
	m, err := Train(xs[:40], ys[:40], 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same-distribution accuracy: within 4x for most queries.
	good := 0
	for i := 40; i < 60; i++ {
		p := m.Predict(xs[i])
		r := p / ys[i]
		if r > 1 {
			r = 1 / r
		}
		if r > 0.25 {
			good++
		}
	}
	if good < 12 {
		t.Fatalf("only %d/20 test queries within 4x", good)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 3); err == nil {
		t.Fatal("empty data accepted")
	}
}
