// Package kcca implements a plan-template nearest-neighbour estimator in
// the spirit of Ganapathi et al. [15], the related-work baseline whose
// failure to extrapolate motivates the paper (§1.1, §2): a query is
// described by per-operator-type counts and aggregate cardinalities, and
// its resource estimate is the average of the k most similar training
// queries in a correlation-weighted feature space.
//
// The full KCCA projection is replaced by per-dimension standardization
// weighted by each dimension's correlation with the target — the
// documented simplification keeps the estimator's defining property (its
// estimates can never exceed the training maximum).
package kcca

import (
	"errors"
	"math"
	"sort"

	"repro/internal/plan"
	"repro/internal/stats"
)

// PlanFeatures builds the template-level feature vector of [15]: for
// each physical operator type, (a) the number of occurrences in the plan
// and (b) the summed output cardinality of its instances.
func PlanFeatures(p *plan.Plan) []float64 {
	nk := len(plan.Kinds())
	v := make([]float64, 2*nk)
	p.Walk(func(n *plan.Node) {
		v[int(n.Kind)]++
		v[nk+int(n.Kind)] += n.Out.Rows
	})
	return v
}

// Model is the fitted nearest-neighbour estimator.
type Model struct {
	K int // neighbours averaged (3 in [15])

	xs     [][]float64 // standardized training features
	ys     []float64
	mean   []float64
	scale  []float64
	weight []float64 // per-dimension relevance weights
}

// Train fits the estimator on template-level feature vectors.
func Train(x [][]float64, y []float64, k int) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("kcca: empty or mismatched training data")
	}
	if k < 1 {
		k = 3
	}
	d := len(x[0])
	m := &Model{K: k, ys: append([]float64(nil), y...),
		mean: make([]float64, d), scale: make([]float64, d), weight: make([]float64, d)}
	col := make([]float64, len(x))
	for f := 0; f < d; f++ {
		for i := range x {
			col[i] = x[i][f]
		}
		m.mean[f] = stats.Mean(col)
		sd := math.Sqrt(stats.Variance(col))
		if sd < 1e-12 {
			sd = 1
		}
		m.scale[f] = sd
		// Correlation-weighted metric: dimensions that track the target
		// dominate the similarity space, approximating the canonical
		// directions of KCCA.
		w := math.Abs(stats.Pearson(col, y))
		m.weight[f] = 0.1 + w
	}
	m.xs = make([][]float64, len(x))
	for i := range x {
		m.xs[i] = m.standardize(x[i])
	}
	return m, nil
}

func (m *Model) standardize(x []float64) []float64 {
	z := make([]float64, len(x))
	for f := range x {
		z[f] = (x[f] - m.mean[f]) / m.scale[f] * m.weight[f]
	}
	return z
}

// Predict averages the resource usage of the K nearest training queries.
func (m *Model) Predict(x []float64) float64 {
	z := m.standardize(x)
	type cand struct {
		dist float64
		y    float64
	}
	cands := make([]cand, len(m.xs))
	for i, t := range m.xs {
		var d2 float64
		for f := range z {
			d := z[f] - t[f]
			d2 += d * d
		}
		cands[i] = cand{dist: d2, y: m.ys[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	k := m.K
	if k > len(cands) {
		k = len(cands)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += cands[i].y
	}
	return s / float64(k)
}

// MaxTrainTarget returns the largest training resource value — by
// construction an upper bound on any prediction, the failure mode the
// paper's robustness argument starts from.
func (m *Model) MaxTrainTarget() float64 {
	mx := math.Inf(-1)
	for _, v := range m.ys {
		if v > mx {
			mx = v
		}
	}
	return mx
}
