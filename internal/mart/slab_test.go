package mart

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func trainedCompiled(t *testing.T, n int, seed uint64) (*Compiled, [][]float64) {
	t.Helper()
	xs, ys := synth(n, seed, stepFn)
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Compile(m), xs
}

func slabProbes(xs [][]float64, seed uint64) [][]float64 {
	rng := xrand.New(seed)
	probes := append([][]float64{}, xs...)
	for i := 0; i < 400; i++ {
		probes = append(probes, []float64{
			rng.Range(-500, 500), rng.Range(-50, 50), rng.Range(-2, 2),
		})
	}
	probes = append(probes,
		[]float64{0, 0, 0},
		[]float64{1e18, -1e18, math.SmallestNonzeroFloat64},
		[]float64{math.NaN(), 1, 2},
	)
	return probes
}

// TestSlabRoundTripBitIdentical proves the slab codec is lossless: a
// Compiled rebuilt from its slab bytes — via both the zero-copy alias
// and the forced copying decode — predicts bit-identically to the
// original, single-row and batch, on in-range and adversarial probes.
func TestSlabRoundTripBitIdentical(t *testing.T) {
	c, xs := trainedCompiled(t, 1500, 7)
	blob := c.AppendSlab(nil)
	if len(blob) != c.SlabSize() {
		t.Fatalf("encoded %d bytes, SlabSize says %d", len(blob), c.SlabSize())
	}
	probes := slabProbes(xs, 99)

	for _, forceCopy := range []bool{false, true} {
		slabForceCopy = forceCopy
		dec, err := CompiledFromSlab(blob)
		slabForceCopy = false
		if err != nil {
			t.Fatalf("forceCopy=%v: %v", forceCopy, err)
		}
		if dec.NumTrees() != c.NumTrees() {
			t.Fatalf("forceCopy=%v: %d trees, want %d", forceCopy, dec.NumTrees(), c.NumTrees())
		}
		batch := make([]float64, len(probes))
		dec.PredictBatch(probes, batch)
		for i, x := range probes {
			want := c.Predict(x)
			if got := dec.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("forceCopy=%v probe %d: slab Predict %v != %v", forceCopy, i, got, want)
			}
			if math.Float64bits(batch[i]) != math.Float64bits(want) {
				t.Fatalf("forceCopy=%v probe %d: slab PredictBatch %v != %v", forceCopy, i, batch[i], want)
			}
		}
	}
}

// TestSlabRoundTripEncodeStable pins that re-encoding a slab-decoded
// model reproduces the original bytes (the store republishes restored
// models; byte drift would churn every snapshot).
func TestSlabRoundTripEncodeStable(t *testing.T) {
	c, _ := trainedCompiled(t, 600, 11)
	blob := c.AppendSlab(nil)
	dec, err := CompiledFromSlab(blob)
	if err != nil {
		t.Fatal(err)
	}
	again := dec.AppendSlab(nil)
	if string(again) != string(blob) {
		t.Fatal("re-encoded slab differs from original bytes")
	}
}

// TestSlabRejectsCorruption checks the validation surface: every
// mutation that breaks a structural invariant must fail decode with
// ErrSlab, never panic — the batch walk runs without bounds checks and
// relies on these rejections.
func TestSlabRejectsCorruption(t *testing.T) {
	c, _ := trainedCompiled(t, 600, 13)
	blob := c.AppendSlab(nil)

	mutate := func(name string, fn func(b []byte) []byte) {
		t.Helper()
		b := fn(append([]byte(nil), blob...))
		if _, err := CompiledFromSlab(b); err == nil {
			t.Fatalf("%s: decode accepted corrupt slab", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-8] })
	mutate("extended", func(b []byte) []byte { return append(b, 0) })
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("header only", func(b []byte) []byte { return b[:slabHeaderSize] })
	mutate("tree count lies", func(b []byte) []byte { b[4]++; return b })
	mutate("node count lies", func(b []byte) []byte { b[8]++; return b })
	mutate("root out of range", func(b []byte) []byte {
		b[slabHeaderSize] = 0xFF
		b[slabHeaderSize+1] = 0xFF
		b[slabHeaderSize+2] = 0xFF
		b[slabHeaderSize+3] = 0x7F
		return b
	})
	mutate("depth negative", func(b []byte) []byte {
		off := slabHeaderSize + 4*len(c.roots)
		b[off+3] = 0x80
		return b
	})
	mutate("feature out of range", func(b []byte) []byte {
		off := slabHeaderSize + 8*len(c.roots)
		b[off] = 0xFF
		b[off+1] = 0xFF
		return b
	})
}

// TestQuantizeCloseness bounds the quantized walk against the exact
// walk. Training stores float32-exact thresholds and leaf values, so
// on probe vectors the two layouts agree to within routing resolution
// — a tight relative tolerance, not bit equality.
func TestQuantizeCloseness(t *testing.T) {
	c, xs := trainedCompiled(t, 1500, 17)
	q := c.Quantize()
	if q.NumTrees() != c.NumTrees() {
		t.Fatalf("quantized %d trees, want %d", q.NumTrees(), c.NumTrees())
	}
	probes := slabProbes(xs, 41)
	batch := make([]float64, len(probes))
	q.PredictBatch(probes, batch)
	for i, x := range probes {
		exact := c.Predict(x)
		got := q.Predict(x)
		if math.Float64bits(batch[i]) != math.Float64bits(got) {
			t.Fatalf("probe %d: quantized batch %v != single %v", i, batch[i], got)
		}
		diff := math.Abs(got - exact)
		tol := 1e-4 * math.Max(1, math.Abs(exact))
		if !(diff <= tol) {
			t.Fatalf("probe %d: quantized %v vs exact %v (diff %v)", i, got, exact, diff)
		}
	}
}

// TestQuantizedSlabRoundTrip proves the quantized slab codec is
// lossless relative to the in-memory CompiledQ, via both decode paths.
func TestQuantizedSlabRoundTrip(t *testing.T) {
	c, xs := trainedCompiled(t, 900, 23)
	q := c.Quantize()
	blob := q.AppendSlab(nil)
	if len(blob) != q.SlabSize() {
		t.Fatalf("encoded %d bytes, SlabSize says %d", len(blob), q.SlabSize())
	}
	probes := slabProbes(xs, 57)
	for _, forceCopy := range []bool{false, true} {
		slabForceCopy = forceCopy
		dec, err := CompiledQFromSlab(blob)
		slabForceCopy = false
		if err != nil {
			t.Fatalf("forceCopy=%v: %v", forceCopy, err)
		}
		batch := make([]float64, len(probes))
		dec.PredictBatch(probes, batch)
		for i, x := range probes {
			want := q.Predict(x)
			if got := dec.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("forceCopy=%v probe %d: %v != %v", forceCopy, i, got, want)
			}
			if math.Float64bits(batch[i]) != math.Float64bits(want) {
				t.Fatalf("forceCopy=%v probe %d: batch %v != %v", forceCopy, i, batch[i], want)
			}
		}
	}
	if _, err := CompiledQFromSlab(blob[:len(blob)-4]); err == nil {
		t.Fatal("truncated quantized slab accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := CompiledQFromSlab(bad); err == nil {
		t.Fatal("bad quantized magic accepted")
	}
}

// TestQuantizedMarginsMatchPredict pins the explain surface: the final
// margin equals Predict bit for bit, and the margin count equals the
// tree count, mirroring the exact-mode contract.
func TestQuantizedMarginsMatchPredict(t *testing.T) {
	c, xs := trainedCompiled(t, 600, 29)
	q := c.Quantize()
	for _, x := range xs[:64] {
		margins, y := q.PredictMargins(x, nil)
		if len(margins) != q.NumTrees() {
			t.Fatalf("%d margins, want %d", len(margins), q.NumTrees())
		}
		if math.Float64bits(y) != math.Float64bits(q.Predict(x)) {
			t.Fatalf("margin final %v != Predict %v", y, q.Predict(x))
		}
		if len(margins) > 0 && math.Float64bits(margins[len(margins)-1]) != math.Float64bits(y) {
			t.Fatalf("last margin %v != final %v", margins[len(margins)-1], y)
		}
	}
}

// TestFloatKey32Ordering checks the float32 sign-fold preserves
// ordering and maps NaN above every threshold key, mirroring the
// float64 key's routing contract.
func TestFloatKey32Ordering(t *testing.T) {
	vals := []float32{
		float32(math.Inf(-1)), -1e30, -2.5, -1, -math.SmallestNonzeroFloat32,
		0, math.SmallestNonzeroFloat32, 0.5, 1, 3.75, 1e30, float32(math.Inf(1)),
	}
	for i := 0; i < len(vals)-1; i++ {
		if !(floatKey32(vals[i]) < floatKey32(vals[i+1])) {
			t.Fatalf("key ordering broken at %v < %v", vals[i], vals[i+1])
		}
	}
	nan := floatKey32(float32(math.NaN()))
	for _, v := range vals {
		if nan <= floatKey32(v) {
			t.Fatalf("NaN key %#x not above %v", nan, v)
		}
	}
	for _, f := range []float64{-17.25, 0, 1e-12, 3.5, 12345.678, -1e100, 1e100} {
		if got := keyToFloat(floatKey(f)); math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("keyToFloat(floatKey(%v)) = %v", f, got)
		}
	}
}
