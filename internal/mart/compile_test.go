package mart

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestCompiledBitIdentical proves the flattened layout reproduces the
// pointer walk exactly: every prediction must match bit for bit, both
// through Predict and through PredictBatch, inside and outside the
// training range.
func TestCompiledBitIdentical(t *testing.T) {
	xs, ys := synth(1500, 7, stepFn)
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)
	if c.NumTrees() != m.NumTrees() {
		t.Fatalf("compiled %d trees, model has %d", c.NumTrees(), m.NumTrees())
	}

	rng := xrand.New(99)
	probes := make([][]float64, 0, 2000)
	probes = append(probes, xs...)
	for i := 0; i < 500; i++ {
		// Out-of-range and adversarial values: negatives, huge
		// magnitudes, exact zeros.
		probes = append(probes, []float64{
			rng.Range(-500, 500), rng.Range(-50, 50), rng.Range(-2, 2),
		})
	}
	probes = append(probes, []float64{0, 0, 0}, []float64{1e18, -1e18, math.SmallestNonzeroFloat64})

	batch := make([]float64, len(probes))
	c.PredictBatch(probes, batch)
	for i, x := range probes {
		want := m.Predict(x)
		if got := c.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("probe %d: compiled Predict %v != model %v", i, got, want)
		}
		if math.Float64bits(batch[i]) != math.Float64bits(want) {
			t.Fatalf("probe %d: PredictBatch %v != model %v", i, batch[i], want)
		}
	}
}

// TestCompiledSurvivesCodec checks the decode → compile path used when
// serving persisted models: compiling a DecodeBinary'd model still
// matches its own pointer walk exactly.
func TestCompiledSurvivesCodec(t *testing.T) {
	xs, ys := synth(800, 11, stepFn)
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(dec)
	for i := range xs {
		want := dec.Predict(xs[i])
		if got := c.Predict(xs[i]); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: compiled %v != decoded model %v", i, got, want)
		}
	}
}

// TestCompiledEmptyModel covers the degenerate constant model (no trees
// survive training on a flat target).
func TestCompiledEmptyModel(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{5, 5, 5, 5}
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)
	out := make([]float64, len(xs))
	c.PredictBatch(xs, out)
	for i, x := range xs {
		want := m.Predict(x)
		if out[i] != want || c.Predict(x) != want {
			t.Fatalf("constant model mismatch: %v vs %v", out[i], want)
		}
	}
}
