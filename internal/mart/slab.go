package mart

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// Slab encoding: Compiled serialized as a relocatable flat byte range
// whose node/leaf payload bytes are exactly the in-memory layout on a
// little-endian host. That identity is the whole point — a loader can
// mmap the file read-only and alias the node slab and leaf array
// directly over the mapped pages (CompiledFromSlab), so restore cost is
// a header parse plus validation walk, independent of how the model was
// trained, and co-resident processes share the pages.
//
// Layout (all fields little-endian, offsets relative to slab start,
// which callers must keep 8-byte aligned relative to the mapping base):
//
//	off  0  u32  magic "MCS1"
//	off  4  u32  nTrees
//	off  8  u64  nNodes
//	off 16  f64  base
//	off 24  f64  rate
//	off 32  i32  maxFeat
//	off 36  u32  reserved (0)
//	off 40  i32 × nTrees   roots
//	        i32 × nTrees   depth
//	        16B × nNodes   nodes {i32 feat, i32 left, u64 key}
//	        f64 × nNodes   leaf
//
// roots+depth together occupy 8·nTrees bytes, so the node slab is
// always 8-byte aligned without padding. Total size is
// slabHeaderSize + 8·nTrees + 24·nNodes, and a decoder rejects any
// length mismatch.
const (
	slabMagic      = 0x3153434D // "MCS1"
	slabHeaderSize = 40

	// Caps keep a corrupt header from driving huge allocations before
	// the length check; both are far above any trained ensemble.
	maxSlabTrees = 1 << 20
	maxSlabNodes = 1 << 28
	maxSlabFeat  = 1 << 16
	maxSlabDepth = 64
)

var (
	// ErrSlab wraps every slab decode failure so callers can branch on
	// "this byte range is not a usable slab" without matching strings.
	ErrSlab = errors.New("mart: bad slab")

	// hostLittleEndian gates the zero-copy alias: on a big-endian host
	// the file layout and the in-memory layout differ, so decode copies.
	hostLittleEndian = func() bool {
		x := uint16(1)
		return *(*byte)(unsafe.Pointer(&x)) == 1
	}()

	// slabForceCopy forces the copying decode path (tests exercise it on
	// little-endian hosts where the alias path would otherwise win).
	slabForceCopy = false
)

// InputsNeeded returns how many features a row must have for the walks
// to be in bounds: maxFeat+1, or 0 for a model with no nodes. Loaders
// validate this against the metadata that sizes prediction rows.
func (c *Compiled) InputsNeeded() int {
	if len(c.nodes) == 0 {
		return 0
	}
	return int(c.maxFeat) + 1
}

// SlabSize returns the exact encoded size of the compiled model.
func (c *Compiled) SlabSize() int {
	return slabHeaderSize + 8*len(c.roots) + 24*len(c.nodes)
}

// AppendSlab appends the slab encoding of c to dst and returns the
// extended slice. The encoding is byte-deterministic for a given model
// on every host (explicit little-endian stores, no padding garbage).
func (c *Compiled) AppendSlab(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, c.SlabSize())...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:], slabMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(c.roots)))
	binary.LittleEndian.PutUint64(b[8:], uint64(len(c.nodes)))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(c.base))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(c.rate))
	binary.LittleEndian.PutUint32(b[32:], uint32(c.maxFeat))
	binary.LittleEndian.PutUint32(b[36:], 0)
	p := slabHeaderSize
	for _, r := range c.roots {
		binary.LittleEndian.PutUint32(b[p:], uint32(r))
		p += 4
	}
	for _, d := range c.depth {
		binary.LittleEndian.PutUint32(b[p:], uint32(d))
		p += 4
	}
	for i := range c.nodes {
		n := &c.nodes[i]
		binary.LittleEndian.PutUint32(b[p:], uint32(n.feat))
		binary.LittleEndian.PutUint32(b[p+4:], uint32(n.left))
		binary.LittleEndian.PutUint64(b[p+8:], n.key)
		p += 16
	}
	for _, v := range c.leaf {
		binary.LittleEndian.PutUint64(b[p:], math.Float64bits(v))
		p += 8
	}
	return dst
}

// CompiledFromSlab reconstructs a Compiled view over the slab bytes.
// On a little-endian host with an 8-byte-aligned node region the node
// and leaf arrays alias b directly — zero copy, so b must stay alive
// and unmodified for the lifetime of the returned Compiled (an mmap'd
// read-only file satisfies both). Otherwise the arrays are decoded onto
// the heap and b may be discarded.
//
// Every structural invariant the unsafe batch walk relies on is checked
// here — magic, exact length, feature bounds, child-index bounds, the
// leaf self-loop shape — so a decoded slab is safe to walk even if the
// bytes were adversarial (checksums upstream catch accidents; this
// catches everything else).
func CompiledFromSlab(b []byte) (*Compiled, error) {
	if len(b) < slabHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrSlab, len(b), slabHeaderSize)
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != slabMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrSlab, m)
	}
	nTrees := int(binary.LittleEndian.Uint32(b[4:]))
	nNodes64 := binary.LittleEndian.Uint64(b[8:])
	if nTrees > maxSlabTrees || nNodes64 > maxSlabNodes {
		return nil, fmt.Errorf("%w: %d trees / %d nodes exceed caps", ErrSlab, nTrees, nNodes64)
	}
	nNodes := int(nNodes64)
	want := slabHeaderSize + 8*nTrees + 24*nNodes
	if len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrSlab, len(b), want)
	}
	c := &Compiled{
		base:    math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		rate:    math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		maxFeat: int32(binary.LittleEndian.Uint32(b[32:])),
	}
	if math.IsNaN(c.base) || math.IsInf(c.base, 0) || math.IsNaN(c.rate) || math.IsInf(c.rate, 0) {
		return nil, fmt.Errorf("%w: non-finite base/rate", ErrSlab)
	}
	if c.maxFeat < 0 || c.maxFeat >= maxSlabFeat {
		return nil, fmt.Errorf("%w: maxFeat %d", ErrSlab, c.maxFeat)
	}
	p := slabHeaderSize
	c.roots = make([]int32, nTrees)
	for i := range c.roots {
		c.roots[i] = int32(binary.LittleEndian.Uint32(b[p:]))
		p += 4
	}
	c.depth = make([]int32, nTrees)
	for i := range c.depth {
		c.depth[i] = int32(binary.LittleEndian.Uint32(b[p:]))
		p += 4
	}
	nodesOff, leafOff := p, p+16*nNodes
	nb, lb := b[nodesOff:leafOff], b[leafOff:]
	if hostLittleEndian && !slabForceCopy && nNodes > 0 &&
		uintptr(unsafe.Pointer(unsafe.SliceData(nb)))%8 == 0 {
		c.nodes = unsafe.Slice((*cnode)(unsafe.Pointer(unsafe.SliceData(nb))), nNodes)
		c.leaf = unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(lb))), nNodes)
	} else {
		c.nodes = make([]cnode, nNodes)
		c.leaf = make([]float64, nNodes)
		for i := range c.nodes {
			c.nodes[i] = cnode{
				feat: int32(binary.LittleEndian.Uint32(nb[16*i:])),
				left: int32(binary.LittleEndian.Uint32(nb[16*i+4:])),
				key:  binary.LittleEndian.Uint64(nb[16*i+8:]),
			}
			c.leaf[i] = math.Float64frombits(binary.LittleEndian.Uint64(lb[8*i:]))
		}
	}
	if err := c.validateSlab(); err != nil {
		return nil, err
	}
	return c, nil
}

// validateSlab checks the structural invariants the walks depend on.
// The rule for children makes every reachable index stay in range: a
// leaf is exactly {left = self, key = leafKey} (self-loop, never
// exceeded), and an inner node's pair {left, left+1} must both exist.
func (c *Compiled) validateSlab() error {
	n := int32(len(c.nodes))
	for t, r := range c.roots {
		if r < 0 || r >= n {
			return fmt.Errorf("%w: tree %d root %d out of range [0,%d)", ErrSlab, t, r, n)
		}
		if d := c.depth[t]; d < 0 || d > maxSlabDepth {
			return fmt.Errorf("%w: tree %d depth %d", ErrSlab, t, d)
		}
	}
	for i := range c.nodes {
		nd := &c.nodes[i]
		if nd.feat < 0 || nd.feat > c.maxFeat {
			return fmt.Errorf("%w: node %d feat %d > maxFeat %d", ErrSlab, i, nd.feat, c.maxFeat)
		}
		if nd.key == leafKey {
			if nd.left != int32(i) {
				return fmt.Errorf("%w: leaf %d left %d not self", ErrSlab, i, nd.left)
			}
		} else if nd.left < 0 || nd.left+1 >= n || nd.left+1 < 0 {
			return fmt.Errorf("%w: node %d child pair %d out of range [0,%d)", ErrSlab, i, nd.left, n)
		}
	}
	return nil
}
