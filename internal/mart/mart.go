package mart

import (
	"errors"
	"math"

	"repro/internal/par"
	"repro/internal/xrand"
)

// Config controls MART training. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Iterations    int     // number of boosting iterations (M)
	MaxLeaves     int     // leaves per tree (≤ 10 in the paper)
	LearningRate  float64 // shrinkage applied to each tree
	SubsampleFrac float64 // stochastic-GB row subsample per iteration
	MinLeafSize   int     // minimum rows per leaf
	Seed          uint64
	// Workers bounds the tree-level training parallelism: row binning,
	// per-node histogram split finding and the ensemble-prediction
	// update fan out across this many workers. <= 0 selects GOMAXPROCS;
	// 1 trains entirely on the calling goroutine. The trained model is
	// bit-identical at any worker count (the boosting iterations
	// themselves are inherently sequential). Callers that already fan
	// out at the model level (internal/core) set this explicitly so the
	// two layers share one core budget.
	Workers int
}

// DefaultConfig mirrors the paper's setup (§7: M = 1K iterations, 10
// leaves) with standard shrinkage and subsampling. Experiments that
// train hundreds of models lower Iterations for speed; accuracy saturates
// far earlier on our data sizes.
func DefaultConfig() Config {
	return Config{
		Iterations:    1000,
		MaxLeaves:     10,
		LearningRate:  0.1,
		SubsampleFrac: 0.7,
		MinLeafSize:   3,
		Seed:          17,
	}
}

// Model is a trained MART ensemble.
type Model struct {
	Base  float64 // initial constant prediction (training mean)
	Rate  float64 // learning rate the trees were trained with
	Trees []Tree
}

// Train fits a MART model. x is row-major with one feature vector per
// example. Training is deterministic given cfg.Seed.
func Train(x [][]float64, y []float64, cfg Config) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, errors.New("mart: empty or mismatched training data")
	}
	nFeatures := len(x[0])
	for i := range x {
		if len(x[i]) != nFeatures {
			return nil, errors.New("mart: ragged feature matrix")
		}
	}
	if cfg.Iterations <= 0 || cfg.MaxLeaves < 2 {
		return nil, errors.New("mart: invalid config")
	}
	if cfg.MinLeafSize < 1 {
		cfg.MinLeafSize = 1
	}
	if cfg.SubsampleFrac <= 0 || cfg.SubsampleFrac > 1 {
		cfg.SubsampleFrac = 1
	}

	pool := par.NewPool(cfg.Workers)
	defer pool.Close()

	b := newBinner(x, nFeatures, pool)
	binned := b.binMatrix(x, pool)

	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)

	m := &Model{Base: mean, Rate: cfg.LearningRate}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = mean
	}
	resid := make([]float64, n)
	rng := xrand.New(cfg.Seed)
	sampleSize := int(cfg.SubsampleFrac * float64(n))
	if sampleSize < 1 {
		sampleSize = 1
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sc := newTrainScratch(pool.Workers(), n, cfg.MaxLeaves, nFeatures)

	for it := 0; it < cfg.Iterations; it++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		rows := perm
		if sampleSize < n {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			rows = perm[:sampleSize]
		}
		t := growTree(binned, resid, rows, b, cfg.MaxLeaves, cfg.MinLeafSize, pool, sc)
		if len(t.nodes) <= 1 {
			// Residuals are flat (or leaf constraints block splits):
			// absorb the remaining mean and stop early.
			shift := t.nodes[0].Value * cfg.LearningRate
			m.Base += shift
			for i := range pred {
				pred[i] += shift
			}
			break
		}
		// Quantize to the compact encoding's float32 precision right away
		// so a persisted model routes and predicts identically to the
		// in-memory one (§7.3 stores thresholds and values as 4-byte
		// floats).
		for i := range t.nodes {
			nd := &t.nodes[i]
			nd.Value = float64(float32(clampFinite(nd.Value)))
			if nd.Feature >= 0 {
				thr := float32(nd.Threshold)
				if float64(thr) < nd.Threshold {
					thr = math.Nextafter32(thr, float32(math.Inf(1)))
				}
				nd.Threshold = float64(thr)
			}
		}
		m.Trees = append(m.Trees, t)
		// Fold the new tree into the running predictions, row chunks in
		// parallel: each row owns its slot, so the update is exact at any
		// worker count.
		pool.ForChunks(n, rowParMin, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				pred[i] += cfg.LearningRate * t.Predict(x[i])
			}
		})
	}
	return m, nil
}

// Predict returns the ensemble prediction for a feature vector.
func (m *Model) Predict(x []float64) float64 {
	y := m.Base
	for i := range m.Trees {
		y += m.Rate * m.Trees[i].Predict(x)
	}
	return y
}

// NumTrees returns the number of boosted trees.
func (m *Model) NumTrees() int { return len(m.Trees) }
