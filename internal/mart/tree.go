// Package mart implements Multiple Additive Regression-Trees (MART):
// stochastic gradient boosting of small regression trees in the sense of
// Friedman [14] and Wu et al. [21], the paper's base learning method.
//
// Trees are grown leaf-wise with histogram-based split finding (feature
// values are pre-bucketed into ≤ 255 quantile bins), which keeps training
// linear in rows × features per tree. Each boosting iteration fits the
// residual error of the current ensemble on a random subsample, matching
// the paper's setup of M = 1K iterations and ≤ 10 leaves per tree.
//
// Training parallelizes inside each boosting iteration — row binning,
// per-node histogram accumulation (one feature per worker, merged in
// fixed feature order) and the ensemble-prediction update — while the
// iterations themselves stay sequential, as boosting demands. Every
// parallel region writes to disjoint slots and merges deterministically,
// so the trained model is bit-identical at any worker count.
package mart

import (
	"math"
	"sort"

	"repro/internal/par"
)

// Parallelism thresholds: below these sizes dispatch overhead beats the
// parallel win. Purely performance knobs — training output is
// bit-identical on either side of them.
const (
	histParMin = 4096 // leaf rows × features before split finding fans out
	rowParMin  = 1024 // rows before row-chunk loops (binning, prediction) fan out
)

// treeNode is one node of a regression tree. Leaves have Feature == -1.
type treeNode struct {
	Feature   int32   // split feature, -1 for leaves
	Threshold float64 // go left if x[Feature] <= Threshold
	Left      int32   // child indexes within Tree.nodes
	Right     int32
	Value     float64 // prediction at leaves
}

// Tree is a single regression tree.
type Tree struct {
	nodes []treeNode
}

// Predict returns the tree's regression value for x.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// NumLeaves returns the number of terminal nodes.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.nodes {
		if t.nodes[i].Feature < 0 {
			c++
		}
	}
	return c
}

// binner maps raw feature values to quantile bin indexes. Bin boundaries
// (upper edges) are computed once from the training matrix.
type binner struct {
	// edges[f] holds ascending upper edges; value v falls in the first
	// bin whose edge >= v. len(edges[f]) <= maxBins.
	edges [][]float64
}

const maxBins = 64

// newBinner computes quantile-based bin edges for each feature column,
// one feature per worker (columns are independent).
func newBinner(x [][]float64, nFeatures int, pool *par.Pool) *binner {
	b := &binner{edges: make([][]float64, nFeatures)}
	buildFeature := func(f int) {
		sorted := make([]float64, len(x))
		for i := range x {
			sorted[i] = x[i][f]
		}
		sort.Float64s(sorted)
		// Distinct quantile edges.
		var edges []float64
		for k := 1; k <= maxBins; k++ {
			idx := k*len(sorted)/maxBins - 1
			if idx < 0 {
				idx = 0
			}
			v := sorted[idx]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		b.edges[f] = edges
	}
	if pool.Workers() > 1 && len(x) >= rowParMin && nFeatures > 1 {
		pool.For(nFeatures, func(_, f int) { buildFeature(f) })
	} else {
		for f := 0; f < nFeatures; f++ {
			buildFeature(f)
		}
	}
	return b
}

// binOf returns the bin index of value v for feature f.
func (b *binner) binOf(f int, v float64) int {
	e := b.edges[f]
	lo, hi := 0, len(e)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// binMatrix converts the raw matrix into per-row bin indexes, row chunks
// in parallel, all rows backed by one flat allocation.
func (b *binner) binMatrix(x [][]float64, pool *par.Pool) [][]uint8 {
	nF := len(b.edges)
	out := make([][]uint8, len(x))
	flat := make([]uint8, len(x)*nF)
	pool.ForChunks(len(x), rowParMin, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := flat[i*nF : (i+1)*nF : (i+1)*nF]
			for f, v := range x[i] {
				r[f] = uint8(b.binOf(f, v))
			}
			out[i] = r
		}
	})
	return out
}

// leaf is one growable terminal region during tree construction.
type leaf struct {
	rows     []int // segment of the scratch row arena
	sum      float64
	nodeIdx  int32
	bestGain float64
	bestFeat int
	bestBin  int
}

// splitCand is one feature's best split of a leaf: the result slot the
// per-feature histogram scans write into before the fixed-order merge.
type splitCand struct {
	gain float64
	bin  int
	ok   bool
}

// trainScratch holds every buffer growTree reuses across boosting
// stages: per-worker histograms, per-feature split candidates, the row
// arena the leaves partition in place, and the leaf table itself. One
// allocation per Train call instead of several per stage.
type trainScratch struct {
	histSum  [][]float64 // per worker, maxBins wide
	histCnt  [][]int
	cands    []splitCand // per feature
	rowArena []int       // the tree's private copy of the sampled rows
	rowTmp   []int       // staging for the right side of a partition
	leaves   []leaf
}

func newTrainScratch(workers, n, maxLeaves, nFeatures int) *trainScratch {
	sc := &trainScratch{
		histSum:  make([][]float64, workers),
		histCnt:  make([][]int, workers),
		cands:    make([]splitCand, nFeatures),
		rowArena: make([]int, n),
		rowTmp:   make([]int, 0, n),
		leaves:   make([]leaf, 0, maxLeaves),
	}
	for w := range sc.histSum {
		sc.histSum[w] = make([]float64, maxBins)
		sc.histCnt[w] = make([]int, maxBins)
	}
	return sc
}

// bestSplitForFeature scans one feature's histogram for the best split
// of a leaf — the unit of parallelism in split finding. Bin order is
// ascending and ties keep the lower bin (strict >), exactly like the
// sequential scan.
func bestSplitForFeature(binned [][]uint8, resid []float64, rows []int,
	edges []float64, f int, total, parentScore float64, n, minLeaf int,
	histSum []float64, histCnt []int) splitCand {

	nb := len(edges)
	if nb < 2 {
		return splitCand{}
	}
	for k := 0; k < nb; k++ {
		histSum[k] = 0
		histCnt[k] = 0
	}
	for _, r := range rows {
		bin := binned[r][f]
		histSum[bin] += resid[r]
		histCnt[bin]++
	}
	var cand splitCand
	var leftSum float64
	leftCnt := 0
	for k := 0; k < nb-1; k++ {
		leftSum += histSum[k]
		leftCnt += histCnt[k]
		rightCnt := n - leftCnt
		if leftCnt < minLeaf || rightCnt < minLeaf {
			continue
		}
		rightSum := total - leftSum
		gain := leftSum*leftSum/float64(leftCnt) +
			rightSum*rightSum/float64(rightCnt) - parentScore
		// Strict > against a zero baseline: the same accept rule the
		// sequential scan applied, so per-feature bests then a fixed-order
		// merge reproduce its choice bit for bit.
		if gain > cand.gain {
			cand = splitCand{gain: gain, bin: k, ok: true}
		}
	}
	return cand
}

// growTree fits one regression tree to the residuals of the sampled rows
// using histogram split finding. rows are indexes into binned/resid; the
// caller's slice is copied into the scratch arena and never mutated (the
// subsample permutation must survive untouched for the next iteration's
// shuffle).
func growTree(binned [][]uint8, resid []float64, rows []int, b *binner,
	maxLeaves, minLeaf int, pool *par.Pool, sc *trainScratch) Tree {

	nFeatures := len(b.edges)
	var t Tree
	t.nodes = make([]treeNode, 0, 2*maxLeaves-1)
	mkLeafValue := func(sum float64, n int) float64 {
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	arena := sc.rowArena[:len(rows)]
	copy(arena, rows)

	var rootSum float64
	for _, r := range arena {
		rootSum += resid[r]
	}
	t.nodes = append(t.nodes, treeNode{Feature: -1, Value: mkLeafValue(rootSum, len(arena))})
	leaves := sc.leaves[:0] // cap maxLeaves: appends never reallocate, &leaves[i] stays valid
	leaves = append(leaves, leaf{rows: arena, sum: rootSum, nodeIdx: 0})

	// findBest computes the best split of a leaf: one feature per worker
	// into per-worker histograms, candidates merged in ascending feature
	// order so ties resolve exactly as the sequential feature loop did
	// (lowest feature, then lowest bin, wins).
	findBest := func(lf *leaf) {
		lf.bestGain = 0
		lf.bestFeat = -1
		n := len(lf.rows)
		if n < 2*minLeaf {
			return
		}
		total := lf.sum
		parentScore := total * total / float64(n)
		scan := func(worker, f int) {
			sc.cands[f] = bestSplitForFeature(binned, resid, lf.rows, b.edges[f], f,
				total, parentScore, n, minLeaf, sc.histSum[worker], sc.histCnt[worker])
		}
		if pool.Workers() > 1 && n*nFeatures >= histParMin {
			pool.For(nFeatures, scan)
		} else {
			for f := 0; f < nFeatures; f++ {
				scan(0, f)
			}
		}
		for f := 0; f < nFeatures; f++ {
			if c := sc.cands[f]; c.ok && c.gain > lf.bestGain {
				lf.bestGain = c.gain
				lf.bestFeat = f
				lf.bestBin = c.bin
			}
		}
	}

	findBest(&leaves[0])
	for len(leaves) < maxLeaves {
		// Split the leaf with the highest gain.
		bi := -1
		for i := range leaves {
			if leaves[i].bestFeat >= 0 && (bi < 0 || leaves[i].bestGain > leaves[bi].bestGain) {
				bi = i
			}
		}
		if bi < 0 {
			break
		}
		f, bin := leaves[bi].bestFeat, leaves[bi].bestBin
		thr := b.edges[f][bin]
		// Stable in-place partition of the leaf's arena segment: left
		// rows compact to the front, right rows stage in the scratch
		// buffer and copy back — same contents and order as an
		// append-based split, with zero per-stage allocation.
		rows := leaves[bi].rows
		tmp := sc.rowTmp[:0]
		var lsum, rsum float64
		li := 0
		for _, r := range rows {
			if int(binned[r][f]) <= bin {
				rows[li] = r
				li++
				lsum += resid[r]
			} else {
				tmp = append(tmp, r)
				rsum += resid[r]
			}
		}
		if li == 0 || li == len(rows) {
			leaves[bi].bestFeat = -1 // degenerate; stop splitting this leaf
			continue
		}
		copy(rows[li:], tmp)
		// Materialize the split: current node becomes internal.
		liIdx := int32(len(t.nodes))
		t.nodes = append(t.nodes, treeNode{Feature: -1, Value: mkLeafValue(lsum, li)})
		riIdx := int32(len(t.nodes))
		t.nodes = append(t.nodes, treeNode{Feature: -1, Value: mkLeafValue(rsum, len(rows)-li)})
		nd := &t.nodes[leaves[bi].nodeIdx]
		nd.Feature = int32(f)
		nd.Threshold = thr
		nd.Left, nd.Right = liIdx, riIdx

		leaves[bi] = leaf{rows: rows[:li], sum: lsum, nodeIdx: liIdx}
		leaves = append(leaves, leaf{rows: rows[li:], sum: rsum, nodeIdx: riIdx})
		findBest(&leaves[bi])
		findBest(&leaves[len(leaves)-1])
	}
	return t
}

// clampFinite protects leaf values against numeric blowups.
func clampFinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
