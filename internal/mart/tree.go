// Package mart implements Multiple Additive Regression-Trees (MART):
// stochastic gradient boosting of small regression trees in the sense of
// Friedman [14] and Wu et al. [21], the paper's base learning method.
//
// Trees are grown leaf-wise with histogram-based split finding (feature
// values are pre-bucketed into ≤ 255 quantile bins), which keeps training
// linear in rows × features per tree. Each boosting iteration fits the
// residual error of the current ensemble on a random subsample, matching
// the paper's setup of M = 1K iterations and ≤ 10 leaves per tree.
package mart

import (
	"math"
	"sort"
)

// treeNode is one node of a regression tree. Leaves have Feature == -1.
type treeNode struct {
	Feature   int32   // split feature, -1 for leaves
	Threshold float64 // go left if x[Feature] <= Threshold
	Left      int32   // child indexes within Tree.nodes
	Right     int32
	Value     float64 // prediction at leaves
}

// Tree is a single regression tree.
type Tree struct {
	nodes []treeNode
}

// Predict returns the tree's regression value for x.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// NumLeaves returns the number of terminal nodes.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.nodes {
		if t.nodes[i].Feature < 0 {
			c++
		}
	}
	return c
}

// binner maps raw feature values to quantile bin indexes. Bin boundaries
// (upper edges) are computed once from the training matrix.
type binner struct {
	// edges[f] holds ascending upper edges; value v falls in the first
	// bin whose edge >= v. len(edges[f]) <= maxBins.
	edges [][]float64
}

const maxBins = 64

// newBinner computes quantile-based bin edges for each feature column.
func newBinner(x [][]float64, nFeatures int) *binner {
	b := &binner{edges: make([][]float64, nFeatures)}
	vals := make([]float64, len(x))
	for f := 0; f < nFeatures; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Distinct quantile edges.
		var edges []float64
		for k := 1; k <= maxBins; k++ {
			idx := k*len(sorted)/maxBins - 1
			if idx < 0 {
				idx = 0
			}
			v := sorted[idx]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		b.edges[f] = edges
	}
	return b
}

// binOf returns the bin index of value v for feature f.
func (b *binner) binOf(f int, v float64) int {
	e := b.edges[f]
	lo, hi := 0, len(e)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// binMatrix converts the raw matrix into per-row bin indexes.
func (b *binner) binMatrix(x [][]float64) [][]uint8 {
	out := make([][]uint8, len(x))
	for i, row := range x {
		r := make([]uint8, len(row))
		for f, v := range row {
			r[f] = uint8(b.binOf(f, v))
		}
		out[i] = r
	}
	return out
}

// growTree fits one regression tree to the residuals of the sampled rows
// using histogram split finding. rows are indexes into binned/resid.
func growTree(binned [][]uint8, resid []float64, rows []int, b *binner,
	maxLeaves, minLeaf int) Tree {

	nFeatures := len(b.edges)
	type leaf struct {
		rows     []int
		sum      float64
		nodeIdx  int32
		bestGain float64
		bestFeat int
		bestBin  int
	}
	var t Tree
	mkLeafValue := func(sum float64, n int) float64 {
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	var rootSum float64
	for _, r := range rows {
		rootSum += resid[r]
	}
	t.nodes = append(t.nodes, treeNode{Feature: -1, Value: mkLeafValue(rootSum, len(rows))})
	leaves := []*leaf{{rows: rows, sum: rootSum, nodeIdx: 0}}

	// findBest computes the best split of a leaf via histograms.
	histSum := make([]float64, maxBins)
	histCnt := make([]int, maxBins)
	findBest := func(lf *leaf) {
		lf.bestGain = 0
		lf.bestFeat = -1
		n := len(lf.rows)
		if n < 2*minLeaf {
			return
		}
		total := lf.sum
		parentScore := total * total / float64(n)
		for f := 0; f < nFeatures; f++ {
			nb := len(b.edges[f])
			if nb < 2 {
				continue
			}
			for k := 0; k < nb; k++ {
				histSum[k] = 0
				histCnt[k] = 0
			}
			for _, r := range lf.rows {
				bin := binned[r][f]
				histSum[bin] += resid[r]
				histCnt[bin]++
			}
			var leftSum float64
			leftCnt := 0
			for k := 0; k < nb-1; k++ {
				leftSum += histSum[k]
				leftCnt += histCnt[k]
				rightCnt := n - leftCnt
				if leftCnt < minLeaf || rightCnt < minLeaf {
					continue
				}
				rightSum := total - leftSum
				gain := leftSum*leftSum/float64(leftCnt) +
					rightSum*rightSum/float64(rightCnt) - parentScore
				if gain > lf.bestGain {
					lf.bestGain = gain
					lf.bestFeat = f
					lf.bestBin = k
				}
			}
		}
	}

	findBest(leaves[0])
	for len(leaves) < maxLeaves {
		// Split the leaf with the highest gain.
		bi := -1
		for i, lf := range leaves {
			if lf.bestFeat >= 0 && (bi < 0 || lf.bestGain > leaves[bi].bestGain) {
				bi = i
			}
		}
		if bi < 0 {
			break
		}
		lf := leaves[bi]
		f, bin := lf.bestFeat, lf.bestBin
		thr := b.edges[f][bin]
		var lrows, rrows []int
		var lsum, rsum float64
		for _, r := range lf.rows {
			if int(binned[r][f]) <= bin {
				lrows = append(lrows, r)
				lsum += resid[r]
			} else {
				rrows = append(rrows, r)
				rsum += resid[r]
			}
		}
		if len(lrows) == 0 || len(rrows) == 0 {
			lf.bestFeat = -1 // degenerate; stop splitting this leaf
			continue
		}
		// Materialize the split: current node becomes internal.
		li := int32(len(t.nodes))
		t.nodes = append(t.nodes, treeNode{Feature: -1, Value: mkLeafValue(lsum, len(lrows))})
		ri := int32(len(t.nodes))
		t.nodes = append(t.nodes, treeNode{Feature: -1, Value: mkLeafValue(rsum, len(rrows))})
		nd := &t.nodes[lf.nodeIdx]
		nd.Feature = int32(f)
		nd.Threshold = thr
		nd.Left, nd.Right = li, ri

		left := &leaf{rows: lrows, sum: lsum, nodeIdx: li}
		right := &leaf{rows: rrows, sum: rsum, nodeIdx: ri}
		leaves[bi] = left
		leaves = append(leaves, right)
		findBest(left)
		findBest(right)
	}
	return t
}

// clampFinite protects leaf values against numeric blowups.
func clampFinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
