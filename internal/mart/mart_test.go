package mart

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Iterations = 150
	return cfg
}

// synth generates n samples of a nonlinear 3-feature function.
func synth(n int, seed uint64, fn func(x []float64) float64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Range(0, 100), rng.Range(0, 10), rng.Range(0, 1)}
		xs[i] = x
		ys[i] = fn(x)
	}
	return xs, ys
}

func stepFn(x []float64) float64 {
	y := 2 * x[0]
	if x[0] > 50 {
		y += 120 // discontinuity MART must capture
	}
	y += 5 * x[1] * x[1] // nonlinear
	return y
}

func TestTrainFitsNonlinear(t *testing.T) {
	xs, ys := synth(2000, 1, stepFn)
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// In-sample relative error should be small.
	var relSum float64
	for i := range xs {
		p := m.Predict(xs[i])
		relSum += math.Abs(p-ys[i]) / math.Max(ys[i], 1)
	}
	if rel := relSum / float64(len(xs)); rel > 0.08 {
		t.Fatalf("mean in-sample relative error %v too high", rel)
	}
}

func TestGeneralizesWithinRange(t *testing.T) {
	xs, ys := synth(2000, 2, stepFn)
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := synth(300, 99, stepFn)
	var relSum float64
	for i := range tx {
		relSum += math.Abs(m.Predict(tx[i])-ty[i]) / math.Max(ty[i], 1)
	}
	if rel := relSum / float64(len(tx)); rel > 0.15 {
		t.Fatalf("test relative error %v too high", rel)
	}
}

func TestDoesNotExtrapolate(t *testing.T) {
	// The defining failure of plain regression trees (paper Figure 3):
	// beyond the training range the prediction saturates.
	rng := xrand.New(5)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 1500; i++ {
		v := rng.Range(0, 100)
		xs = append(xs, []float64{v})
		ys = append(ys, 10*v)
	}
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	far := m.Predict([]float64{1000})
	if far > 1200 {
		t.Fatalf("tree model extrapolated to %v; should saturate near 1000", far)
	}
	if far < 700 {
		t.Fatalf("prediction at the edge should be near the max training target, got %v", far)
	}
}

func TestDeterministicTraining(t *testing.T) {
	xs, ys := synth(500, 3, stepFn)
	m1, _ := Train(xs, ys, testConfig())
	m2, _ := Train(xs, ys, testConfig())
	probe := []float64{33, 4, 0.5}
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Fatal("training not deterministic")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, testConfig()); err == nil {
		t.Fatal("empty training data accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, testConfig()); err == nil {
		t.Fatal("mismatched x/y accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, testConfig()); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	bad := testConfig()
	bad.Iterations = 0
	if _, err := Train([][]float64{{1}}, []float64{1}, bad); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestConstantTarget(t *testing.T) {
	xs, _ := synth(100, 7, stepFn)
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = 42
	}
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(xs[0]); math.Abs(got-42) > 1e-6 {
		t.Fatalf("constant target predicted as %v", got)
	}
	// Early stopping: flat residuals need no 150 trees.
	if m.NumTrees() > 5 {
		t.Fatalf("constant fit used %d trees", m.NumTrees())
	}
}

func TestLeafBudget(t *testing.T) {
	xs, ys := synth(1000, 9, stepFn)
	cfg := testConfig()
	cfg.MaxLeaves = 10
	m, _ := Train(xs, ys, cfg)
	for i := range m.Trees {
		if got := m.Trees[i].NumLeaves(); got > 10 {
			t.Fatalf("tree %d has %d leaves", i, got)
		}
	}
}

func TestSingleFeatureRepeatedValues(t *testing.T) {
	// Categorical-ish feature with few distinct values.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		v := float64(i % 4)
		xs = append(xs, []float64{v})
		ys = append(ys, v*100)
	}
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0.0; v < 4; v++ {
		if got := m.Predict([]float64{v}); math.Abs(got-v*100) > 5 {
			t.Fatalf("class %v predicted %v", v, got)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	xs, ys := synth(800, 11, stepFn)
	m, _ := Train(xs, ys, testConfig())
	buf, err := m.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumTrees() != m.NumTrees() {
		t.Fatalf("tree count changed: %d -> %d", m.NumTrees(), m2.NumTrees())
	}
	for i := 0; i < 50; i++ {
		probe := xs[i]
		a, b := m.Predict(probe), m2.Predict(probe)
		// float32 quantization of thresholds/values allows tiny drift.
		if math.Abs(a-b) > 1e-3*(math.Abs(a)+1) {
			t.Fatalf("round-trip prediction drift: %v vs %v", a, b)
		}
	}
}

func TestEncodingSizePerTree(t *testing.T) {
	// §7.3: a 10-leaf tree encodes in ≲ 130 bytes.
	xs, ys := synth(2000, 13, stepFn)
	cfg := testConfig()
	cfg.Iterations = 200
	m, _ := Train(xs, ys, cfg)
	buf, err := m.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	perTree := float64(len(buf)-25) / float64(m.NumTrees())
	if perTree > 135 {
		t.Fatalf("%.1f bytes/tree, paper budget is ~130", perTree)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBinary([]byte("not a model")); err == nil {
		t.Fatal("garbage accepted")
	}
	xs, ys := synth(100, 15, stepFn)
	m, _ := Train(xs, ys, testConfig())
	buf, _ := m.EncodeBinary()
	if _, err := DecodeBinary(buf[:len(buf)-3]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	if _, err := DecodeBinary(append(buf, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	xs, ys := synth(1500, 17, stepFn)
	cfg := testConfig()
	cfg.SubsampleFrac = 0.5
	m, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var relSum float64
	for i := range xs {
		relSum += math.Abs(m.Predict(xs[i])-ys[i]) / math.Max(ys[i], 1)
	}
	if rel := relSum / float64(len(xs)); rel > 0.12 {
		t.Fatalf("subsampled training error %v too high", rel)
	}
}
