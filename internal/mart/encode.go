package mart

import (
	"encoding/binary"
	"errors"
	"math"
)

// The binary encoding follows §7.3 of the paper: per inner node one byte
// of child offset, one byte of split feature and a 4-byte float
// threshold; per leaf a 4-byte float estimate. With ≤ 10 leaves a tree
// fits in ~130 bytes and a 1K-iteration model in ~127 KB.
//
// Layout:
//
//	model : "MART" u8(version) f64(base) f64(rate) u32(nTrees) tree*
//	tree  : u8(nNodes) node*
//	node  : u8(leftOffset)  — 0 marks a leaf
//	        leaf:  f32(value)
//	        inner: u8(feature) f32(threshold) u8(rightOffset)
//
// Offsets are relative to the current node index (left = i + leftOffset),
// which keeps them within one byte for 19-node trees.

var magic = [4]byte{'M', 'A', 'R', 'T'}

const encVersion = 1

// ErrBadEncoding is returned when decoding malformed bytes.
var ErrBadEncoding = errors.New("mart: bad encoding")

// AppendBinary serializes the model, appending to dst.
func (m *Model) AppendBinary(dst []byte) ([]byte, error) {
	dst = append(dst, magic[:]...)
	dst = append(dst, encVersion)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(m.Base))
	dst = append(dst, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(m.Rate))
	dst = append(dst, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(m.Trees)))
	dst = append(dst, b4[:]...)
	for ti := range m.Trees {
		t := &m.Trees[ti]
		if len(t.nodes) > 255 {
			return nil, errors.New("mart: tree too large for compact encoding")
		}
		dst = append(dst, uint8(len(t.nodes)))
		for i := range t.nodes {
			n := &t.nodes[i]
			if n.Feature < 0 {
				dst = append(dst, 0)
				binary.LittleEndian.PutUint32(b4[:], math.Float32bits(float32(n.Value)))
				dst = append(dst, b4[:]...)
				continue
			}
			lo := int(n.Left) - i
			ro := int(n.Right) - i
			if lo < 1 || lo > 255 || ro < 1 || ro > 255 || n.Feature > 255 {
				return nil, errors.New("mart: node offsets exceed compact encoding")
			}
			dst = append(dst, uint8(lo), uint8(n.Feature))
			// Split thresholds compare with <=; round up to the nearest
			// float32 so values exactly at the threshold keep routing
			// left after quantization.
			thr := float32(n.Threshold)
			if float64(thr) < n.Threshold {
				thr = math.Nextafter32(thr, float32(math.Inf(1)))
			}
			binary.LittleEndian.PutUint32(b4[:], math.Float32bits(thr))
			dst = append(dst, b4[:]...)
			dst = append(dst, uint8(ro))
		}
	}
	return dst, nil
}

// EncodeBinary serializes the model into a fresh byte slice.
func (m *Model) EncodeBinary() ([]byte, error) {
	return m.AppendBinary(nil)
}

// DecodeBinary reconstructs a model from EncodeBinary output.
func DecodeBinary(src []byte) (*Model, error) {
	r := &reader{buf: src}
	var mg [4]byte
	if !r.bytes(mg[:]) || mg != magic {
		return nil, ErrBadEncoding
	}
	ver, ok := r.u8()
	if !ok || ver != encVersion {
		return nil, ErrBadEncoding
	}
	base, ok := r.f64()
	if !ok {
		return nil, ErrBadEncoding
	}
	rate, ok := r.f64()
	if !ok {
		return nil, ErrBadEncoding
	}
	nTrees, ok := r.u32()
	if !ok || nTrees > 1<<22 {
		return nil, ErrBadEncoding
	}
	m := &Model{Base: base, Rate: rate, Trees: make([]Tree, 0, nTrees)}
	for ti := uint32(0); ti < nTrees; ti++ {
		nNodes, ok := r.u8()
		if !ok || nNodes == 0 {
			return nil, ErrBadEncoding
		}
		t := Tree{nodes: make([]treeNode, nNodes)}
		for i := 0; i < int(nNodes); i++ {
			lo, ok := r.u8()
			if !ok {
				return nil, ErrBadEncoding
			}
			if lo == 0 {
				v, ok := r.f32()
				if !ok {
					return nil, ErrBadEncoding
				}
				t.nodes[i] = treeNode{Feature: -1, Value: float64(v)}
				continue
			}
			feat, ok1 := r.u8()
			thr, ok2 := r.f32()
			ro, ok3 := r.u8()
			if !ok1 || !ok2 || !ok3 || ro == 0 {
				return nil, ErrBadEncoding
			}
			left := i + int(lo)
			right := i + int(ro)
			if left >= int(nNodes) || right >= int(nNodes) {
				return nil, ErrBadEncoding
			}
			t.nodes[i] = treeNode{
				Feature:   int32(feat),
				Threshold: float64(thr),
				Left:      int32(left),
				Right:     int32(right),
			}
		}
		m.Trees = append(m.Trees, t)
	}
	if len(r.buf) != r.pos {
		return nil, ErrBadEncoding
	}
	return m, nil
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) bytes(dst []byte) bool {
	if r.pos+len(dst) > len(r.buf) {
		return false
	}
	copy(dst, r.buf[r.pos:])
	r.pos += len(dst)
	return true
}

func (r *reader) u8() (uint8, bool) {
	if r.pos >= len(r.buf) {
		return 0, false
	}
	v := r.buf[r.pos]
	r.pos++
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.pos+4 > len(r.buf) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, true
}

func (r *reader) f32() (float32, bool) {
	v, ok := r.u32()
	return math.Float32frombits(v), ok
}

func (r *reader) f64() (float64, bool) {
	if r.pos+8 > len(r.buf) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return math.Float64frombits(v), true
}
