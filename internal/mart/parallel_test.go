package mart

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/par"
	"repro/internal/xrand"
)

// syntheticTrainingSet builds a deterministic nonlinear regression
// problem large enough to cross every parallelism threshold (row
// binning, histogram split finding, prediction update).
func syntheticTrainingSet(n, nFeatures int, seed uint64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, nFeatures)
		for f := range row {
			row[f] = rng.Range(0, 1000)
		}
		xs[i] = row
		y := row[0]*3 + row[1]*row[1]/500
		if row[2] > 600 {
			y += 250
		}
		ys[i] = y + rng.Range(0, 10)
	}
	return xs, ys
}

// TestTrainBitIdenticalAcrossWorkers is the tentpole determinism
// guarantee at the mart layer: the encoded model bytes must be
// identical at every worker count, including counts that are not
// divisors of the feature or row counts and counts above GOMAXPROCS.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	xs, ys := syntheticTrainingSet(3000, 9, 11)
	cfg := DefaultConfig()
	cfg.Iterations = 40

	encode := func(workers int) []byte {
		cfg.Workers = workers
		m, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		enc, err := m.EncodeBinary()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return enc
	}

	want := encode(1)
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0), 0} {
		if got := encode(w); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: encoded model differs from sequential (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}
}

// TestTrainBitIdenticalWithoutSubsampling covers the full-batch path
// (SubsampleFrac = 1 skips the shuffle entirely), whose row set hits
// the in-place partition arena differently.
func TestTrainBitIdenticalWithoutSubsampling(t *testing.T) {
	xs, ys := syntheticTrainingSet(1500, 6, 23)
	cfg := DefaultConfig()
	cfg.Iterations = 25
	cfg.SubsampleFrac = 1

	var want []byte
	for _, w := range []int{1, 3, 8} {
		cfg.Workers = w
		m, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		enc, err := m.EncodeBinary()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = enc
		} else if !bytes.Equal(enc, want) {
			t.Fatalf("workers=%d: model differs from workers=1", w)
		}
	}
}

// TestGrowTreeLeavesSubsampleUntouched pins the arena-copy contract:
// growTree partitions rows in place, and a reordered caller slice would
// silently change the next iteration's shuffle (and so the model).
func TestGrowTreeLeavesSubsampleUntouched(t *testing.T) {
	xs, ys := syntheticTrainingSet(400, 5, 7)
	pool := par.NewPool(4)
	defer pool.Close()
	b := newBinner(xs, 5, pool)
	binned := b.binMatrix(xs, pool)
	rows := make([]int, len(xs))
	for i := range rows {
		rows[i] = len(rows) - 1 - i // distinctive order
	}
	before := append([]int(nil), rows...)
	sc := newTrainScratch(pool.Workers(), len(xs), 10, 5)
	tr := growTree(binned, ys, rows, b, 10, 3, pool, sc)
	if tr.NumLeaves() < 2 {
		t.Fatal("tree did not split; partition path not exercised")
	}
	for i := range rows {
		if rows[i] != before[i] {
			t.Fatalf("growTree reordered the caller's row slice at %d", i)
		}
	}
}
