package mart

import (
	"math"
	"unsafe"
)

// Compiled is the batch-serving layout of a trained ensemble: every
// tree's nodes flattened into one contiguous slab of 16-byte nodes,
// visited tree-outer / sample-inner so a tree's handful of nodes stays
// in cache while an entire batch routes through it.
//
// Three structural tricks make the walk fast:
//
//   - Children are laid out as adjacent pairs (right = left + 1), so
//     routing is "i = left + goRight".
//   - Thresholds are stored as order-preserving integer keys (see
//     floatKey), so goRight is an integer comparison the compiler turns
//     into a flag-set instruction instead of a floating-point branch.
//     The data-dependent branch mispredictions of the pointer walk —
//     its dominant cost, and one a pipeline flush makes impossible to
//     hide with instruction-level parallelism — disappear entirely.
//   - Leaves route to themselves (their key is the maximum, which no
//     sample key strictly exceeds), so a walk can run for the tree's
//     full depth with no per-node exit test, and PredictBatch keeps
//     eight independent walks in flight per tree to overlap the
//     node-load/compare latency chains.
//
// The layout is built once at model load/publish time and is immutable
// afterwards; predictions are bit-identical to the pointer walk of
// Model.Predict: the integer key comparison routes exactly like the
// float comparison (NaN features route right in both, matching IEEE
// "x <= t is false"), and the per-sample accumulation order (base, then
// each tree's shrunken leaf value, in tree order) is the same float
// operations.
type Compiled struct {
	base    float64
	rate    float64
	maxFeat int32   // highest feature index any node reads
	roots   []int32 // per-tree root index into nodes
	depth   []int32 // per-tree max root→leaf step count
	nodes   []cnode // all trees' nodes, tree by tree
	leaf    []float64
}

// cnode is one flattened tree node: the split feature, the left child's
// absolute index (right child = left+1) and the split threshold as an
// order-preserving key. A leaf has left = its own index and the maximum
// key, so a walk that reaches it stays; its prediction lives in
// Compiled.leaf at the same index.
type cnode struct {
	feat int32
	left int32
	key  uint64
}

// floatKey maps a float64 to an integer key such that for all non-NaN
// x, v: x > v ⟺ floatKey(x) > floatKey(v) (the usual sign-fold: negative
// floats flip all bits, positives set the sign bit). NaN maps to the
// maximum key, which exceeds every threshold key — so a NaN feature
// routes right, exactly like the float comparison "x <= t" being false
// in the pointer walk. (Unreachable corner: a tree threshold of -0
// would order strictly below a +0 feature; trained thresholds come from
// observed non-negative feature values and are never -0.)
func floatKey(f float64) uint64 {
	b := math.Float64bits(f)
	key := b ^ (uint64(int64(b)>>63) | 0x8000000000000000)
	if b&0x7FFFFFFFFFFFFFFF > 0x7FF0000000000000 { // NaN
		key = ^uint64(0)
	}
	return key
}

// leafKey never satisfies "sample key > leafKey": the self-loop trap.
const leafKey = ^uint64(0)

// Compile flattens the model into the contiguous serving layout,
// re-laying each tree so sibling children are adjacent.
func Compile(m *Model) *Compiled {
	c := &Compiled{base: m.Base, rate: m.Rate, roots: make([]int32, 0, len(m.Trees))}
	total := 0
	for i := range m.Trees {
		total += len(m.Trees[i].nodes)
	}
	c.nodes = make([]cnode, 0, total)
	c.leaf = make([]float64, 0, total)
	for ti := range m.Trees {
		root, depth := c.compileTree(&m.Trees[ti])
		c.roots = append(c.roots, root)
		c.depth = append(c.depth, depth)
	}
	return c
}

// compileTree appends one tree to the slab, allocating child pairs
// adjacently, and returns its root index and maximum depth.
func (c *Compiled) compileTree(t *Tree) (root, maxDepth int32) {
	root = int32(len(c.nodes))
	c.nodes = append(c.nodes, cnode{})
	c.leaf = append(c.leaf, 0)
	type item struct{ old, new, depth int32 }
	stack := []item{{0, root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[it.old]
		if n.Feature < 0 {
			c.nodes[it.new] = cnode{feat: 0, left: it.new, key: leafKey}
			c.leaf[it.new] = n.Value
			if it.depth > maxDepth {
				maxDepth = it.depth
			}
			continue
		}
		li := int32(len(c.nodes))
		c.nodes = append(c.nodes, cnode{}, cnode{})
		c.leaf = append(c.leaf, 0, 0)
		c.nodes[it.new] = cnode{feat: n.Feature, left: li, key: floatKey(n.Threshold)}
		if n.Feature > c.maxFeat {
			c.maxFeat = n.Feature
		}
		stack = append(stack, item{n.Left, li, it.depth + 1}, item{n.Right, li + 1, it.depth + 1})
	}
	return root, maxDepth
}

// NumTrees returns the number of compiled trees.
func (c *Compiled) NumTrees() int { return len(c.roots) }

// FeatureKeys converts a feature row into walk keys (floatKey per
// feature), appending to dst. Converting once per row instead of once
// per node visit takes the bit-fold off the walk's critical path: a
// sample visits ~trees×depth nodes but has only a handful of features.
func FeatureKeys(dst []uint64, x []float64) []uint64 {
	for _, f := range x {
		dst = append(dst, floatKey(f))
	}
	return dst
}

// walk routes one pre-keyed sample for at most depth steps and returns
// its leaf index. A leaf routes to itself, so "the index stopped
// moving" is the settled condition.
func (c *Compiled) walk(root, depth int32, k []uint64) int32 {
	i := root
	nodes := c.nodes
	for d := int32(0); d < depth; d++ {
		n := nodes[i]
		l := n.left
		if k[n.feat] > n.key {
			l++
		}
		if l == i {
			break
		}
		i = l
	}
	return i
}

// Predict evaluates one feature vector, bit-identical to Model.Predict
// on the source model.
func (c *Compiled) Predict(x []float64) float64 {
	var buf [32]uint64
	k := FeatureKeys(buf[:0], x)
	y := c.base
	for t, root := range c.roots {
		y += c.rate * c.leaf[c.walk(root, c.depth[t], k)]
	}
	return y
}

// PredictMargins evaluates one feature vector like Predict while
// recording the cumulative ensemble output after each boosting stage:
// margins[t] is the prediction of the first t+1 trees (base included),
// so margins[len-1] is the final prediction. The walk and the
// accumulation are exactly Predict's float operations, so the final
// margin is bit-identical to Predict — the per-stage trajectory is the
// explain surface, not an approximation of it. Margins are appended to
// dst (pass dst[:0] to reuse a buffer); the final prediction is also
// returned directly so a model with zero trees still reports its base.
func (c *Compiled) PredictMargins(x []float64, dst []float64) ([]float64, float64) {
	var buf [32]uint64
	k := FeatureKeys(buf[:0], x)
	y := c.base
	for t, root := range c.roots {
		y += c.rate * c.leaf[c.walk(root, c.depth[t], k)]
		dst = append(dst, y)
	}
	return dst, y
}

// PredictBatch evaluates every row of xs into out (parallel slices,
// len(out) must equal len(xs); every row must have more than
// Compiled.maxFeat features, which is checked up front). Rows are
// converted to walk keys once (FeatureKeys), trees are the outer loop
// so each tree's nodes stay hot across the whole batch, and eight
// samples walk each tree concurrently with branchless routing; per
// sample the accumulation order is identical to Predict, so results
// are bit-identical to calling Predict row by row.
//
// The inner walk reads nodes and keys through unsafe pointer
// arithmetic: the row lengths are validated once above the loop, node
// child indexes are in range by construction (Compile lays them out),
// and removing the per-access bounds checks is what lets the compiler
// turn the routing comparison into flag-based selection instead of a
// mispredicting branch — the branch mispredictions of the pointer walk
// were its dominant cost, and a pipeline flush cannot be hidden by
// instruction-level parallelism.
func (c *Compiled) PredictBatch(xs [][]float64, out []float64) {
	for i := range out {
		out[i] = c.base
	}
	if len(c.nodes) == 0 || len(xs) == 0 {
		return
	}
	need := int(c.maxFeat)
	total := 0
	for _, x := range xs {
		if len(x) <= need {
			_ = x[need] // panic with the standard bounds-check error
		}
		total += len(x)
	}
	keySlab := make([]uint64, 0, total)
	keys := make([][]uint64, len(xs))
	for j, x := range xs {
		off := len(keySlab)
		keySlab = FeatureKeys(keySlab, x)
		keys[j] = keySlab[off:len(keySlab):len(keySlab)]
	}

	const nodeSize = unsafe.Sizeof(cnode{})
	np := unsafe.Pointer(unsafe.SliceData(c.nodes))
	rate := c.rate
	for t, root := range c.roots {
		depth := c.depth[t]
		j := 0
		for ; j+8 <= len(keys); j += 8 {
			p0 := unsafe.Pointer(unsafe.SliceData(keys[j]))
			p1 := unsafe.Pointer(unsafe.SliceData(keys[j+1]))
			p2 := unsafe.Pointer(unsafe.SliceData(keys[j+2]))
			p3 := unsafe.Pointer(unsafe.SliceData(keys[j+3]))
			p4 := unsafe.Pointer(unsafe.SliceData(keys[j+4]))
			p5 := unsafe.Pointer(unsafe.SliceData(keys[j+5]))
			p6 := unsafe.Pointer(unsafe.SliceData(keys[j+6]))
			p7 := unsafe.Pointer(unsafe.SliceData(keys[j+7]))
			i0, i1, i2, i3 := root, root, root, root
			i4, i5, i6, i7 := root, root, root, root
			for d := int32(0); d < depth; d++ {
				n0 := (*cnode)(unsafe.Add(np, uintptr(i0)*nodeSize))
				n1 := (*cnode)(unsafe.Add(np, uintptr(i1)*nodeSize))
				n2 := (*cnode)(unsafe.Add(np, uintptr(i2)*nodeSize))
				n3 := (*cnode)(unsafe.Add(np, uintptr(i3)*nodeSize))
				n4 := (*cnode)(unsafe.Add(np, uintptr(i4)*nodeSize))
				n5 := (*cnode)(unsafe.Add(np, uintptr(i5)*nodeSize))
				n6 := (*cnode)(unsafe.Add(np, uintptr(i6)*nodeSize))
				n7 := (*cnode)(unsafe.Add(np, uintptr(i7)*nodeSize))
				var d0, d1, d2, d3, d4, d5, d6, d7 int32
				if *(*uint64)(unsafe.Add(p0, uintptr(n0.feat)*8)) > n0.key {
					d0 = 1
				}
				if *(*uint64)(unsafe.Add(p1, uintptr(n1.feat)*8)) > n1.key {
					d1 = 1
				}
				if *(*uint64)(unsafe.Add(p2, uintptr(n2.feat)*8)) > n2.key {
					d2 = 1
				}
				if *(*uint64)(unsafe.Add(p3, uintptr(n3.feat)*8)) > n3.key {
					d3 = 1
				}
				if *(*uint64)(unsafe.Add(p4, uintptr(n4.feat)*8)) > n4.key {
					d4 = 1
				}
				if *(*uint64)(unsafe.Add(p5, uintptr(n5.feat)*8)) > n5.key {
					d5 = 1
				}
				if *(*uint64)(unsafe.Add(p6, uintptr(n6.feat)*8)) > n6.key {
					d6 = 1
				}
				if *(*uint64)(unsafe.Add(p7, uintptr(n7.feat)*8)) > n7.key {
					d7 = 1
				}
				l0, l1, l2, l3 := n0.left+d0, n1.left+d1, n2.left+d2, n3.left+d3
				l4, l5, l6, l7 := n4.left+d4, n5.left+d5, n6.left+d6, n7.left+d7
				// All settled on leaves (self-loops): done early, so a
				// deep outlier leaf doesn't pad every walk.
				if l0 == i0 && l1 == i1 && l2 == i2 && l3 == i3 &&
					l4 == i4 && l5 == i5 && l6 == i6 && l7 == i7 {
					break
				}
				i0, i1, i2, i3 = l0, l1, l2, l3
				i4, i5, i6, i7 = l4, l5, l6, l7
			}
			out[j] += rate * c.leaf[i0]
			out[j+1] += rate * c.leaf[i1]
			out[j+2] += rate * c.leaf[i2]
			out[j+3] += rate * c.leaf[i3]
			out[j+4] += rate * c.leaf[i4]
			out[j+5] += rate * c.leaf[i5]
			out[j+6] += rate * c.leaf[i6]
			out[j+7] += rate * c.leaf[i7]
		}
		for ; j < len(keys); j++ {
			out[j] += rate * c.leaf[c.walk(root, depth, keys[j])]
		}
	}
}
