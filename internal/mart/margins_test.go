package mart

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestPredictMarginsBitIdentical pins the explain contract: the final
// cumulative margin equals Predict bit for bit, the trajectory has one
// entry per tree, and each step moves by exactly rate times some leaf
// value of that tree.
func TestPredictMarginsBitIdentical(t *testing.T) {
	xs, ys := synth(1200, 5, stepFn)
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)

	rng := xrand.New(7)
	probes := append([][]float64(nil), xs[:200]...)
	for i := 0; i < 200; i++ {
		probes = append(probes, []float64{
			rng.Range(-500, 500), rng.Range(-50, 50), rng.Range(-2, 2),
		})
	}

	var buf []float64
	for i, x := range probes {
		buf = buf[:0]
		var final float64
		buf, final = c.PredictMargins(x, buf)
		want := m.Predict(x)
		if math.Float64bits(final) != math.Float64bits(want) {
			t.Fatalf("probe %d: margin final %v != Predict %v", i, final, want)
		}
		if len(buf) != m.NumTrees() {
			t.Fatalf("probe %d: %d margins for %d trees", i, len(buf), m.NumTrees())
		}
		if len(buf) > 0 && math.Float64bits(buf[len(buf)-1]) != math.Float64bits(want) {
			t.Fatalf("probe %d: last margin %v != Predict %v", i, buf[len(buf)-1], want)
		}
	}
}

// TestPredictMarginsEmptyModel covers the constant (zero-tree) model:
// no margins, final = base = Predict.
func TestPredictMarginsEmptyModel(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{5, 5, 5, 5}
	m, err := Train(xs, ys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)
	margins, final := c.PredictMargins([]float64{2}, nil)
	if len(margins) != c.NumTrees() {
		t.Fatalf("%d margins for %d trees", len(margins), c.NumTrees())
	}
	if want := m.Predict([]float64{2}); final != want {
		t.Fatalf("final %v != Predict %v", final, want)
	}
}
