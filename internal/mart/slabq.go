package mart

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// CompiledQ is the quantized sibling of Compiled: thresholds stored as
// order-preserving float32 keys (4 bytes) and leaf values as float32,
// shrinking each node from 16 to 12 bytes and each leaf from 8 to 4.
// Training already quantizes leaf values to float32 precision and
// rounds thresholds up to the nearest float32 (see growTree), so the
// stored values are exact, and feature values are narrowed toward +Inf
// (see FeatureKeys32), which preserves every "x <= t" routing decision
// against a float32-exact threshold. For models trained here the
// quantized walk therefore reproduces the exact walk; the layout is
// still treated as approximate — publish gates it on probe predictions
// staying within tolerance of the exact walk (reject-if-worse), and
// serving only uses it when explicitly opted in.
type CompiledQ struct {
	base    float64
	rate    float64
	maxFeat int32
	roots   []int32
	depth   []int32
	nodes   []qnode
	leaf    []float32
}

// qnode mirrors cnode at 12 bytes: float32 threshold key, left child
// index, split feature. A leaf has left = its own index and key
// leafKey32.
type qnode struct {
	key  uint32
	left int32
	feat int32
}

const leafKey32 = ^uint32(0)

// floatKey32 is floatKey for float32: order-preserving sign-fold with
// NaN mapped to the maximum key so NaN features route right, matching
// the float64 walk and IEEE "x <= t is false".
func floatKey32(f float32) uint32 {
	b := math.Float32bits(f)
	key := b ^ (uint32(int32(b)>>31) | 0x80000000)
	if b&0x7FFFFFFF > 0x7F800000 { // NaN
		key = ^uint32(0)
	}
	return key
}

// keyToFloat recovers the float64 threshold from its walk key
// (inverse of floatKey; the NaN fold is not invertible but thresholds
// are never NaN — leafKey marks leaves before this is consulted).
func keyToFloat(key uint64) float64 {
	b := key
	if b&0x8000000000000000 != 0 {
		b ^= 0x8000000000000000
	} else {
		b = ^b
	}
	return math.Float64frombits(b)
}

// Quantize derives the float32 layout from the exact compiled model.
// Thresholds are rounded up to the nearest float32 so "x <= t" keeps
// its meaning for every float32-representable x (trained thresholds
// are already exact float32 values, making the rounding a no-op in
// practice); out-of-range magnitudes saturate to ±Inf, which preserves
// ordering against every finite feature value.
func (c *Compiled) Quantize() *CompiledQ {
	q := &CompiledQ{
		base:    c.base,
		rate:    c.rate,
		maxFeat: c.maxFeat,
		roots:   append([]int32(nil), c.roots...),
		depth:   append([]int32(nil), c.depth...),
		nodes:   make([]qnode, len(c.nodes)),
		leaf:    make([]float32, len(c.leaf)),
	}
	for i := range c.nodes {
		n := &c.nodes[i]
		qn := qnode{left: n.left, feat: n.feat}
		if n.key == leafKey {
			qn.key = leafKey32
		} else {
			t := keyToFloat(n.key)
			t32 := float32(t)
			if float64(t32) < t {
				t32 = math.Nextafter32(t32, float32(math.Inf(1)))
			}
			qn.key = floatKey32(t32)
		}
		q.nodes[i] = qn
	}
	for i, v := range c.leaf {
		q.leaf[i] = float32(v)
	}
	return q
}

// NumTrees returns the number of compiled trees.
func (q *CompiledQ) NumTrees() int { return len(q.roots) }

// InputsNeeded mirrors Compiled.InputsNeeded for the quantized layout.
func (q *CompiledQ) InputsNeeded() int {
	if len(q.nodes) == 0 {
		return 0
	}
	return int(q.maxFeat) + 1
}

// FeatureKeys32 converts a float64 feature row into float32 walk keys,
// appending to dst. Values are narrowed toward +Inf (the smallest
// float32 ≥ x): with a float32-representable threshold t this makes
// "x32 <= t" agree with the exact "x <= t" for every float64 x — if
// x ≤ t the round-up lands at or below t, and if x > t it stays above —
// whereas round-to-nearest would misroute any x within half an ulp
// above a threshold. Trained thresholds are always float32-exact (see
// growTree), so quantized routing matches the exact walk outright; the
// narrowing is the quantized walk's only potential divergence and the
// encode-time gate bounds it for any other model source.
func FeatureKeys32(dst []uint32, x []float64) []uint32 {
	inf := float32(math.Inf(1))
	for _, f := range x {
		f32 := float32(f)
		if float64(f32) < f {
			f32 = math.Nextafter32(f32, inf)
		}
		dst = append(dst, floatKey32(f32))
	}
	return dst
}

func (q *CompiledQ) walk(root, depth int32, k []uint32) int32 {
	i := root
	nodes := q.nodes
	for d := int32(0); d < depth; d++ {
		n := nodes[i]
		l := n.left
		if k[n.feat] > n.key {
			l++
		}
		if l == i {
			break
		}
		i = l
	}
	return i
}

// Predict evaluates one feature vector through the quantized layout.
// Accumulation is float64 (base, then each tree's shrunken float32 leaf
// widened back), so the only precision loss is the stored values and
// routing resolution, not the sum.
func (q *CompiledQ) Predict(x []float64) float64 {
	var buf [32]uint32
	k := FeatureKeys32(buf[:0], x)
	y := q.base
	for t, root := range q.roots {
		y += q.rate * float64(q.leaf[q.walk(root, q.depth[t], k)])
	}
	return y
}

// PredictMargins mirrors Compiled.PredictMargins over the quantized
// walk: margins[t] is the cumulative prediction after t+1 trees.
func (q *CompiledQ) PredictMargins(x []float64, dst []float64) ([]float64, float64) {
	var buf [32]uint32
	k := FeatureKeys32(buf[:0], x)
	y := q.base
	for t, root := range q.roots {
		y += q.rate * float64(q.leaf[q.walk(root, q.depth[t], k)])
		dst = append(dst, y)
	}
	return dst, y
}

// PredictBatch is Compiled.PredictBatch over the 12-byte node layout:
// tree-outer, eight interleaved branchless walks, results identical to
// calling CompiledQ.Predict row by row. Row lengths are validated up
// front exactly like the exact-mode batch walk.
func (q *CompiledQ) PredictBatch(xs [][]float64, out []float64) {
	for i := range out {
		out[i] = q.base
	}
	if len(q.nodes) == 0 || len(xs) == 0 {
		return
	}
	need := int(q.maxFeat)
	total := 0
	for _, x := range xs {
		if len(x) <= need {
			_ = x[need] // panic with the standard bounds-check error
		}
		total += len(x)
	}
	keySlab := make([]uint32, 0, total)
	keys := make([][]uint32, len(xs))
	for j, x := range xs {
		off := len(keySlab)
		keySlab = FeatureKeys32(keySlab, x)
		keys[j] = keySlab[off:len(keySlab):len(keySlab)]
	}

	const nodeSize = unsafe.Sizeof(qnode{})
	np := unsafe.Pointer(unsafe.SliceData(q.nodes))
	rate := q.rate
	for t, root := range q.roots {
		depth := q.depth[t]
		j := 0
		for ; j+8 <= len(keys); j += 8 {
			p0 := unsafe.Pointer(unsafe.SliceData(keys[j]))
			p1 := unsafe.Pointer(unsafe.SliceData(keys[j+1]))
			p2 := unsafe.Pointer(unsafe.SliceData(keys[j+2]))
			p3 := unsafe.Pointer(unsafe.SliceData(keys[j+3]))
			p4 := unsafe.Pointer(unsafe.SliceData(keys[j+4]))
			p5 := unsafe.Pointer(unsafe.SliceData(keys[j+5]))
			p6 := unsafe.Pointer(unsafe.SliceData(keys[j+6]))
			p7 := unsafe.Pointer(unsafe.SliceData(keys[j+7]))
			i0, i1, i2, i3 := root, root, root, root
			i4, i5, i6, i7 := root, root, root, root
			for d := int32(0); d < depth; d++ {
				n0 := (*qnode)(unsafe.Add(np, uintptr(i0)*nodeSize))
				n1 := (*qnode)(unsafe.Add(np, uintptr(i1)*nodeSize))
				n2 := (*qnode)(unsafe.Add(np, uintptr(i2)*nodeSize))
				n3 := (*qnode)(unsafe.Add(np, uintptr(i3)*nodeSize))
				n4 := (*qnode)(unsafe.Add(np, uintptr(i4)*nodeSize))
				n5 := (*qnode)(unsafe.Add(np, uintptr(i5)*nodeSize))
				n6 := (*qnode)(unsafe.Add(np, uintptr(i6)*nodeSize))
				n7 := (*qnode)(unsafe.Add(np, uintptr(i7)*nodeSize))
				var d0, d1, d2, d3, d4, d5, d6, d7 int32
				if *(*uint32)(unsafe.Add(p0, uintptr(n0.feat)*4)) > n0.key {
					d0 = 1
				}
				if *(*uint32)(unsafe.Add(p1, uintptr(n1.feat)*4)) > n1.key {
					d1 = 1
				}
				if *(*uint32)(unsafe.Add(p2, uintptr(n2.feat)*4)) > n2.key {
					d2 = 1
				}
				if *(*uint32)(unsafe.Add(p3, uintptr(n3.feat)*4)) > n3.key {
					d3 = 1
				}
				if *(*uint32)(unsafe.Add(p4, uintptr(n4.feat)*4)) > n4.key {
					d4 = 1
				}
				if *(*uint32)(unsafe.Add(p5, uintptr(n5.feat)*4)) > n5.key {
					d5 = 1
				}
				if *(*uint32)(unsafe.Add(p6, uintptr(n6.feat)*4)) > n6.key {
					d6 = 1
				}
				if *(*uint32)(unsafe.Add(p7, uintptr(n7.feat)*4)) > n7.key {
					d7 = 1
				}
				l0, l1, l2, l3 := n0.left+d0, n1.left+d1, n2.left+d2, n3.left+d3
				l4, l5, l6, l7 := n4.left+d4, n5.left+d5, n6.left+d6, n7.left+d7
				if l0 == i0 && l1 == i1 && l2 == i2 && l3 == i3 &&
					l4 == i4 && l5 == i5 && l6 == i6 && l7 == i7 {
					break
				}
				i0, i1, i2, i3 = l0, l1, l2, l3
				i4, i5, i6, i7 = l4, l5, l6, l7
			}
			out[j] += rate * float64(q.leaf[i0])
			out[j+1] += rate * float64(q.leaf[i1])
			out[j+2] += rate * float64(q.leaf[i2])
			out[j+3] += rate * float64(q.leaf[i3])
			out[j+4] += rate * float64(q.leaf[i4])
			out[j+5] += rate * float64(q.leaf[i5])
			out[j+6] += rate * float64(q.leaf[i6])
			out[j+7] += rate * float64(q.leaf[i7])
		}
		for ; j < len(keys); j++ {
			out[j] += rate * float64(q.leaf[q.walk(root, depth, keys[j])])
		}
	}
}

// Quantized slab layout "MCQ1": identical header and roots/depth tables
// to the exact slab, then 12-byte nodes and float32 leaves. The node
// region lands 4-byte aligned (header 40 + 8·nTrees), which is all the
// 12-byte records and float32 leaves need for aliasing.
const slabQMagic = 0x3151434D // "MCQ1"

// SlabSize returns the exact encoded size of the quantized model.
func (q *CompiledQ) SlabSize() int {
	return slabHeaderSize + 8*len(q.roots) + 16*len(q.nodes)
}

// AppendSlab appends the quantized slab encoding of q to dst.
func (q *CompiledQ) AppendSlab(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, q.SlabSize())...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:], slabQMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(q.roots)))
	binary.LittleEndian.PutUint64(b[8:], uint64(len(q.nodes)))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(q.base))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(q.rate))
	binary.LittleEndian.PutUint32(b[32:], uint32(q.maxFeat))
	binary.LittleEndian.PutUint32(b[36:], 0)
	p := slabHeaderSize
	for _, r := range q.roots {
		binary.LittleEndian.PutUint32(b[p:], uint32(r))
		p += 4
	}
	for _, d := range q.depth {
		binary.LittleEndian.PutUint32(b[p:], uint32(d))
		p += 4
	}
	for i := range q.nodes {
		n := &q.nodes[i]
		binary.LittleEndian.PutUint32(b[p:], n.key)
		binary.LittleEndian.PutUint32(b[p+4:], uint32(n.left))
		binary.LittleEndian.PutUint32(b[p+8:], uint32(n.feat))
		p += 12
	}
	for _, v := range q.leaf {
		binary.LittleEndian.PutUint32(b[p:], math.Float32bits(v))
		p += 4
	}
	return dst
}

// CompiledQFromSlab reconstructs a CompiledQ view over quantized slab
// bytes, aliasing the node and leaf regions on a little-endian host
// (b must then outlive the returned model, e.g. an mmap'd file) and
// copy-decoding otherwise. Validation mirrors CompiledFromSlab.
func CompiledQFromSlab(b []byte) (*CompiledQ, error) {
	if len(b) < slabHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrSlab, len(b), slabHeaderSize)
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != slabQMagic {
		return nil, fmt.Errorf("%w: quantized magic %#x", ErrSlab, m)
	}
	nTrees := int(binary.LittleEndian.Uint32(b[4:]))
	nNodes64 := binary.LittleEndian.Uint64(b[8:])
	if nTrees > maxSlabTrees || nNodes64 > maxSlabNodes {
		return nil, fmt.Errorf("%w: %d trees / %d nodes exceed caps", ErrSlab, nTrees, nNodes64)
	}
	nNodes := int(nNodes64)
	want := slabHeaderSize + 8*nTrees + 16*nNodes
	if len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrSlab, len(b), want)
	}
	q := &CompiledQ{
		base:    math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		rate:    math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		maxFeat: int32(binary.LittleEndian.Uint32(b[32:])),
	}
	if math.IsNaN(q.base) || math.IsInf(q.base, 0) || math.IsNaN(q.rate) || math.IsInf(q.rate, 0) {
		return nil, fmt.Errorf("%w: non-finite base/rate", ErrSlab)
	}
	if q.maxFeat < 0 || q.maxFeat >= maxSlabFeat {
		return nil, fmt.Errorf("%w: maxFeat %d", ErrSlab, q.maxFeat)
	}
	p := slabHeaderSize
	q.roots = make([]int32, nTrees)
	for i := range q.roots {
		q.roots[i] = int32(binary.LittleEndian.Uint32(b[p:]))
		p += 4
	}
	q.depth = make([]int32, nTrees)
	for i := range q.depth {
		q.depth[i] = int32(binary.LittleEndian.Uint32(b[p:]))
		p += 4
	}
	nodesOff, leafOff := p, p+12*nNodes
	nb, lb := b[nodesOff:leafOff], b[leafOff:]
	if hostLittleEndian && !slabForceCopy && nNodes > 0 &&
		uintptr(unsafe.Pointer(unsafe.SliceData(nb)))%4 == 0 {
		q.nodes = unsafe.Slice((*qnode)(unsafe.Pointer(unsafe.SliceData(nb))), nNodes)
		q.leaf = unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(lb))), nNodes)
	} else {
		q.nodes = make([]qnode, nNodes)
		q.leaf = make([]float32, nNodes)
		for i := range q.nodes {
			q.nodes[i] = qnode{
				key:  binary.LittleEndian.Uint32(nb[12*i:]),
				left: int32(binary.LittleEndian.Uint32(nb[12*i+4:])),
				feat: int32(binary.LittleEndian.Uint32(nb[12*i+8:])),
			}
			q.leaf[i] = math.Float32frombits(binary.LittleEndian.Uint32(lb[4*i:]))
		}
	}
	if err := q.validateSlab(); err != nil {
		return nil, err
	}
	return q, nil
}

func (q *CompiledQ) validateSlab() error {
	n := int32(len(q.nodes))
	for t, r := range q.roots {
		if r < 0 || r >= n {
			return fmt.Errorf("%w: tree %d root %d out of range [0,%d)", ErrSlab, t, r, n)
		}
		if d := q.depth[t]; d < 0 || d > maxSlabDepth {
			return fmt.Errorf("%w: tree %d depth %d", ErrSlab, t, d)
		}
	}
	for i := range q.nodes {
		nd := &q.nodes[i]
		if nd.feat < 0 || nd.feat > q.maxFeat {
			return fmt.Errorf("%w: node %d feat %d > maxFeat %d", ErrSlab, i, nd.feat, q.maxFeat)
		}
		if nd.key == leafKey32 {
			if nd.left != int32(i) {
				return fmt.Errorf("%w: leaf %d left %d not self", ErrSlab, i, nd.left)
			}
		} else if nd.left < 0 || nd.left+1 >= n || nd.left+1 < 0 {
			return fmt.Errorf("%w: node %d child pair %d out of range [0,%d)", ErrSlab, i, nd.left, n)
		}
	}
	return nil
}
