package mart

import "testing"

func benchModel(b *testing.B) (*Model, [][]float64) {
	xs, ys := synth(4000, 5, stepFn)
	cfg := testConfig()
	cfg.Iterations = 200
	m, err := Train(xs, ys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, xs[:256]
}

// BenchmarkPointerWalk is the sequential baseline: one pointer-chasing
// Tree.Predict per tree per sample.
func BenchmarkPointerWalk(b *testing.B) {
	m, xs := benchModel(b)
	out := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range xs {
			out[j] = m.Predict(x)
		}
	}
	b.ReportMetric(float64(len(xs)), "preds/op")
}

// BenchmarkCompiledBatch is the compiled flat layout, tree-outer with
// four interleaved branchless walks.
func BenchmarkCompiledBatch(b *testing.B) {
	m, xs := benchModel(b)
	c := Compile(m)
	out := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatch(xs, out)
	}
	b.ReportMetric(float64(len(xs)), "preds/op")
}
