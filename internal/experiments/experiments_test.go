package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
)

var (
	runnerOnce sync.Once
	testRunner *Runner
)

// sharedRunner builds one small-scale runner for all tests (workload
// execution and scale-function selection are the expensive parts).
func sharedRunner(t *testing.T) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		testRunner = NewRunner(Setup{Seed: 3, SizeFactor: 0.4, MartIterations: 150, Noise: -1})
	})
	return testRunner
}

func TestRunnerWorkloadsExecuted(t *testing.T) {
	r := sharedRunner(t)
	for _, q := range r.W.TPCH[:10] {
		if q.Plan.TotalActual().CPU <= 0 {
			t.Fatal("TPC-H plan not executed")
		}
	}
	if r.ScaleTable.Len() == 0 {
		t.Fatal("scale table empty")
	}
	train, test := r.SplitTPCH()
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("empty TPC-H split")
	}
	small, large := r.SplitBySF()
	if len(small) == 0 || len(large) == 0 {
		t.Fatal("empty SF split")
	}
}

func TestTable4Shape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("Table 4 has %d rows, want 6", len(tbl.Rows))
	}
	sc := tbl.Get(TechScaling, "TPC-H")
	lin := tbl.Get(TechLinear, "TPC-H")
	if sc == nil || lin == nil {
		t.Fatal("missing rows")
	}
	// The headline claim: SCALING beats LINEAR on same-distribution data
	// and achieves a high fraction of small-ratio queries.
	if sc.Result.L1 >= lin.Result.L1 {
		t.Errorf("SCALING L1 %.3f not better than LINEAR %.3f", sc.Result.L1, lin.Result.L1)
	}
	if sc.Result.Buckets.LE15 < 0.7 {
		t.Errorf("SCALING R<=1.5 fraction %.2f too low", sc.Result.Buckets.LE15)
	}
	if !strings.Contains(tbl.Format(), "SCALING") {
		t.Error("Format missing SCALING row")
	}
}

func TestTable5GeneralizationShape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"Large", "Small"} {
		sc := tbl.Get(TechScaling, set)
		mart := tbl.Get(TechMART, set)
		if sc == nil || mart == nil {
			t.Fatalf("missing rows for %s", set)
		}
		// The robustness claim: SCALING degrades less than plain MART
		// when train and test data sizes differ.
		if sc.Result.L1 > mart.Result.L1 {
			t.Errorf("%s: SCALING L1 %.3f worse than MART %.3f", set, sc.Result.L1, mart.Result.L1)
		}
	}
	// MART trained on small data must badly underestimate large data —
	// visible as a large share of R>2 queries relative to SCALING.
	mart := tbl.Get(TechMART, "Large")
	sc := tbl.Get(TechScaling, "Large")
	if mart.Result.Buckets.GT2+1e-9 < sc.Result.Buckets.GT2 {
		t.Errorf("MART R>2 (%.2f) should be at least SCALING's (%.2f) on large test data",
			mart.Result.Buckets.GT2, sc.Result.Buckets.GT2)
	}
}

func TestTable6CrossWorkloadShape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"TPC-DS", "Real-1", "Real-2"} {
		sc := tbl.Get(TechScaling, set)
		if sc == nil {
			t.Fatalf("missing SCALING row for %s", set)
		}
		mart := tbl.Get(TechMART, set)
		// Cross-workload: scaling must not collapse the way plain MART
		// does (the paper's MART L1 errors are 12–78 here).
		if sc.Result.L1 > mart.Result.L1 {
			t.Errorf("%s: SCALING L1 %.3f worse than MART %.3f", set, sc.Result.L1, mart.Result.L1)
		}
	}
}

func TestTable7IncludesOPT(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table7()
	if err != nil {
		t.Fatal(err)
	}
	opt := tbl.Get(TechOPT, "TPC-H")
	sc := tbl.Get(TechScaling, "TPC-H")
	if opt == nil || sc == nil {
		t.Fatal("missing OPT/SCALING rows")
	}
	// The optimizer baseline is worse than the learned model.
	if sc.Result.L1 >= opt.Result.L1 {
		t.Errorf("SCALING L1 %.3f not better than OPT %.3f", sc.Result.L1, opt.Result.L1)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("Table 7 has %d rows, want 7", len(tbl.Rows))
	}
}

func TestTable10IOShape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 10 has %d rows, want 4", len(tbl.Rows))
	}
	sc := tbl.Get(TechScaling, "TPC-H")
	if sc.Result.Buckets.LE15 < 0.6 {
		t.Errorf("SCALING I/O R<=1.5 fraction %.2f too low", sc.Result.Buckets.LE15)
	}
}

func TestTable13TrainingTimes(t *testing.T) {
	rows := Table13([]int{2000, 4000}, 50)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Seconds <= 0 || rows[1].Seconds <= 0 {
		t.Fatal("non-positive training times")
	}
	// Training should scale roughly linearly (allow generous slack).
	if rows[1].Seconds > rows[0].Seconds*6 {
		t.Errorf("training time scaled superlinearly: %v -> %v", rows[0].Seconds, rows[1].Seconds)
	}
	if !strings.Contains(FormatTable13(rows, 50), "Training Times") {
		t.Error("FormatTable13 output malformed")
	}
}

func TestFigure1(t *testing.T) {
	r := sharedRunner(t)
	fig := r.Figure1()
	if len(fig.Series) != 2 {
		t.Fatalf("Figure 1 series = %d", len(fig.Series))
	}
	if len(fig.Series[0].X) == 0 {
		t.Fatal("no near-exact-cardinality queries found")
	}
	if !strings.Contains(fig.Format(), "Figure 1") {
		t.Error("Format broken")
	}
}

func TestFigure2HighCorrelation(t *testing.T) {
	r := sharedRunner(t)
	fig, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if corr := pearson(s.X, s.Y); corr < 0.9 {
		t.Errorf("SCALING estimate/actual correlation %.3f too low", corr)
	}
}

func TestFigures3And6Contrast(t *testing.T) {
	r := sharedRunner(t)
	fig3, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	fig6, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	ratio3 := topDecileEstimateRatio(fig3.Series[0])
	ratio6 := topDecileEstimateRatio(fig6.Series[0])
	// Figure 3: on the largest scans the MART-only estimate saturates
	// near the training maximum — a systematically low estimate/actual
	// ratio. Figure 6: scaling restores it to ~1.
	if ratio3 > 0.75 {
		t.Errorf("MART-only top-decile est/actual ratio %.2f; want systematic underestimation", ratio3)
	}
	if ratio6 < 0.7 || ratio6 > 1.4 {
		t.Errorf("scaled top-decile est/actual ratio %.2f; want ~1", ratio6)
	}
	if ratio6 <= ratio3 {
		t.Errorf("scaling did not improve the underestimation: %.2f vs %.2f", ratio6, ratio3)
	}
}

// topDecileEstimateRatio returns the mean estimate/actual ratio over the
// 10% of points with the largest actual values.
func topDecileEstimateRatio(s Series) float64 {
	if len(s.X) == 0 {
		return 0
	}
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	// Selection by actual value, descending.
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if s.X[idx[j]] > s.X[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	k := len(idx) / 10
	if k < 1 {
		k = 1
	}
	var sum float64
	for _, i := range idx[:k] {
		if s.X[i] > 0 {
			sum += s.Y[i] / s.X[i]
		}
	}
	return sum / float64(k)
}

func pearson(x, y []float64) float64 {
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(len(x)), sy/float64(len(y))
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (sqrt(sxx) * sqrt(syy))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

func TestFigure7NLogNWins(t *testing.T) {
	r := sharedRunner(t)
	fig := r.Figure7()
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "best fit: nlogn") {
			found = true
		}
	}
	if !found {
		t.Errorf("Figure 7 best fit not nlogn: %v", fig.Notes)
	}
}

func TestFigure8LogWins(t *testing.T) {
	r := sharedRunner(t)
	fig := r.Figure8()
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "best fit: log") {
			found = true
		}
	}
	if !found {
		t.Errorf("Figure 8 best fit not log in inner size: %v", fig.Notes)
	}
}

func TestPredictionCostSmall(t *testing.T) {
	r := sharedRunner(t)
	sec, err := r.PredictionCost()
	if err != nil {
		t.Fatal(err)
	}
	// §7.3 reports ~0.5µs/call; our budget is well under 1ms.
	if sec <= 0 || sec > 1e-3 {
		t.Errorf("prediction cost %.2e s/call out of range", sec)
	}
}

func TestModelSizeBounded(t *testing.T) {
	r := sharedRunner(t)
	bytes, err := r.ModelSizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	// §7.3: "the set of all models can be stored in a few megabytes".
	if bytes <= 0 || bytes > 16<<20 {
		t.Errorf("model set size %d bytes out of range", bytes)
	}
}

func TestEvaluateClampsNonPositive(t *testing.T) {
	// A technique returning 0 must not produce NaN metrics.
	r := sharedRunner(t)
	_, test := r.SplitTPCH()
	res := evaluate(zeroEstimator{}, test[:4], plan.CPUTime)
	if res.Buckets.GT2 != 1 {
		t.Errorf("zero estimates should land in R>2: %+v", res)
	}
}

type zeroEstimator struct{}

func (zeroEstimator) PredictPlan(*plan.Plan) float64 { return 0 }
