package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/svm"
	"repro/internal/workload"
)

// Setup controls one full run of the evaluation.
type Setup struct {
	Seed uint64
	// SizeFactor scales workload sizes (1 = paper-sized: 2560 TPC-H
	// queries etc.). Tests use small fractions.
	SizeFactor float64
	// MartIterations for MART/SCALING (the paper uses 1000; accuracy on
	// the simulated substrate saturates much earlier).
	MartIterations int
	// Noise overrides the engine noise (negative = keep default).
	Noise float64
}

// DefaultSetup returns the paper-sized configuration.
func DefaultSetup() Setup {
	return Setup{Seed: 1, SizeFactor: 1, MartIterations: 1000, Noise: -1}
}

// Runner owns the executed workloads and the §6.2 scale table, shared
// across all experiments of one run.
type Runner struct {
	Setup  Setup
	Engine *engine.Engine
	// Workloads, already executed (Actual filled in).
	W          *workload.StandardWorkloads
	ScaleTable *core.ScaleTable
}

// NewRunner generates and executes all workloads and runs the
// scaling-function selection experiments.
func NewRunner(s Setup) *Runner {
	prof := engine.DefaultProfile()
	prof.Seed = s.Seed ^ 0xE49
	if s.Noise >= 0 {
		prof.NoiseCV = s.Noise
	}
	eng := engine.New(prof)
	w := workload.GenStandard(s.Seed, s.SizeFactor)
	for _, qs := range [][]*workload.Query{w.TPCH, w.TPCDS, w.Real1, w.Real2} {
		for _, q := range qs {
			eng.Run(q.Plan)
		}
	}
	b := workload.NewBuilder(workload.DBFor("tpch", 2, 1), 1)
	tbl := core.SelectScaleFunctions(eng, b)
	tbl.MirrorScanKinds()
	return &Runner{Setup: s, Engine: eng, W: w, ScaleTable: tbl}
}

// Plans extracts the plan list of a query list.
func Plans(qs []*workload.Query) []*plan.Plan {
	out := make([]*plan.Plan, len(qs))
	for i, q := range qs {
		out[i] = q.Plan
	}
	return out
}

// SplitTPCH returns the 80/20 train/test split used by Tables 4/7/10.
func (r *Runner) SplitTPCH() (train, test []*plan.Plan) {
	ps := Plans(r.W.TPCH)
	cut := len(ps) * 8 / 10
	return ps[:cut], ps[cut:]
}

// SplitBySF partitions the TPC-H workload into small (SF ≤ 4) and large
// (SF ≥ 6) halves — the Tables 5/8/11 setup.
func (r *Runner) SplitBySF() (small, large []*plan.Plan) {
	for _, q := range r.W.TPCH {
		if q.SF <= 4 {
			small = append(small, q.Plan)
		} else {
			large = append(large, q.Plan)
		}
	}
	return small, large
}

// Row is one table row: a technique evaluated on a test set.
type Row struct {
	Technique string
	TestSet   string
	Result    stats.EvalResult
}

// Table is a formatted experiment result.
type Table struct {
	Name  string
	Title string
	Rows  []Row
}

// evaluate scores a technique on test plans.
func evaluate(m PlanEstimator, test []*plan.Plan, r plan.ResourceKind) stats.EvalResult {
	est := make([]float64, len(test))
	truth := make([]float64, len(test))
	for i, p := range test {
		e := m.PredictPlan(p)
		// Floor estimates at one resource unit (1 ms / 1 logical read):
		// a plan cannot consume less, and techniques that emit zero or
		// negative estimates would otherwise explode the L1 metric by
		// the clamping artifact rather than by their actual error.
		if e < 1 {
			e = 1
		}
		est[i] = e
		truth[i] = p.TotalActual().Get(r)
	}
	return stats.Evaluate(est, truth)
}

// techniqueOrder fixes row ordering to match the paper's tables.
var techniqueOrder = map[string]int{
	TechOPT: 0, TechAkdere: 1, TechLinear: 2, TechMART: 3,
	TechSVM: 4, TechRegTree: 5, TechScaling: 6, TechKCCA: 7,
}

// runTable trains the techniques and evaluates them on each test set.
func (r *Runner) runTable(name, title string, train []*plan.Plan,
	tests map[string][]*plan.Plan, cfg TrainConfig) (*Table, error) {

	ts, err := TrainTechniques(train, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Title: title}
	var sets []string
	for s := range tests {
		sets = append(sets, s)
	}
	sort.Strings(sets)
	for _, set := range sets {
		for tech, m := range ts.Models {
			t.Rows = append(t.Rows, Row{
				Technique: tech,
				TestSet:   set,
				Result:    evaluate(m, tests[set], cfg.Resource),
			})
		}
	}
	sort.SliceStable(t.Rows, func(a, b int) bool {
		if t.Rows[a].TestSet != t.Rows[b].TestSet {
			return t.Rows[a].TestSet < t.Rows[b].TestSet
		}
		return techniqueOrder[t.Rows[a].Technique] < techniqueOrder[t.Rows[b].Technique]
	})
	return t, nil
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Name, t.Title)
	fmt.Fprintf(&b, "%-10s %-10s %8s %9s %12s %8s\n",
		"Technique", "Test Set", "L1 Err", "R<=1.5", "R in [1.5,2]", "R>2")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-10s %-10s %8.2f %8.2f%% %11.2f%% %7.2f%%\n",
			row.Technique, row.TestSet, row.Result.L1,
			row.Result.Buckets.LE15*100, row.Result.Buckets.Mid*100, row.Result.Buckets.GT2*100)
	}
	return b.String()
}

// Get returns the row for a technique and test set, or nil.
func (t *Table) Get(tech, set string) *Row {
	for i := range t.Rows {
		if t.Rows[i].Technique == tech && t.Rows[i].TestSet == set {
			return &t.Rows[i]
		}
	}
	return nil
}

// cpuTechniques are the rows of the CPU tables (4–9).
func cpuTechniques(mode features.Mode) []string {
	ts := []string{TechAkdere, TechLinear, TechMART, TechSVM, TechRegTree, TechScaling}
	if mode == features.Estimated {
		return append([]string{TechOPT}, ts...)
	}
	return ts
}

// ioTechniques are the rows of the I/O tables (10–12): the four
// best-performing models per §7.2.
func ioTechniques() []string {
	return []string{TechAkdere, TechLinear, TechSVM, TechScaling}
}

// cfgFor assembles a TrainConfig for a table experiment.
func (r *Runner) cfgFor(resource plan.ResourceKind, mode features.Mode, techs []string) TrainConfig {
	var kernel svm.Kernel = svm.PolyKernel{Degree: 1}
	if resource == plan.LogicalIO {
		kernel = svm.RBFKernel{Gamma: 0.05}
	}
	return TrainConfig{
		Resource:       resource,
		Mode:           mode,
		MartIterations: r.Setup.MartIterations,
		SVMKernel:      kernel,
		ScaleTable:     r.ScaleTable,
		Techniques:     techs,
	}
}
