package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/store"
	"repro/internal/workload"
)

// The cold-start baseline behind cmd/resbench -exp coldstartbench: it
// publishes one snapshot and times restoring it three ways — heap (JSON
// decode + recompile, slabs disabled), mmap (zero-copy over the exact
// slab) and quantized (the slab's float32 section) — so BENCH_coldstart
// tracks restore latency, per-replica private model memory and restored
// -model batch throughput across PRs. The mmap/heap restore ratio is
// the headline: it is what turns replica fan-out from O(decode) into
// O(page fault).

// ColdStartMode is one restore strategy's measurements.
type ColdStartMode struct {
	// Mode is "heap", "mmap" or "quantized".
	Mode string `json:"mode"`
	// Layouts records how each resource actually materialised
	// (store.Loaded.Layout values, resource-kind order) — confirms the
	// intended path engaged rather than silently falling back.
	Layouts []string `json:"layouts"`
	// RestoreMillis is the median wall-clock of a full snapshot restore
	// (manifest read, checksums, decode or map+validate, both models).
	RestoreMillis float64 `json:"restore_millis"`
	// PrivateModelBytes is the restored models' private heap footprint
	// (heap-alloc delta across the restore, after GC). Mapped slab pages
	// are shared between replicas and excluded by construction — that
	// exclusion is the measurement.
	PrivateModelBytes int64 `json:"private_model_bytes"`
	// BatchPlansPerSec is PredictPlans throughput over the benchmark
	// workload with the restored models (best of rounds).
	BatchPlansPerSec float64 `json:"batch_plans_per_sec"`
}

// ColdStartBench is the serializable cold-start baseline.
type ColdStartBench struct {
	Queries    int `json:"queries"`
	Operators  int `json:"operators"`
	Iterations int `json:"iterations"`
	// ModelFileBytes / SlabFileBytes are the snapshot's on-disk JSON and
	// slab sizes summed over resources (slab pages are shared across
	// co-resident replicas; JSON decode allocates per replica).
	ModelFileBytes int64 `json:"model_file_bytes"`
	SlabFileBytes  int64 `json:"slab_file_bytes"`
	// SlabQuantized reports whether the publish-time accuracy gate
	// admitted a quantized section (the "quantized" mode degrades to the
	// exact layout when false).
	SlabQuantized bool            `json:"slab_quantized"`
	Modes         []ColdStartMode `json:"modes"`
	// MmapSpeedup is the heap restore time over the mmap restore time —
	// the cold-start win of the slab path.
	MmapSpeedup float64 `json:"mmap_speedup"`
}

// RunColdStartBench trains CPU+IO models on an n-query workload,
// publishes one snapshot, and measures restore latency, private model
// memory and post-restore throughput for the heap, mmap and quantized
// strategies, taking the median of rounds restores per mode.
func RunColdStartBench(n, iters, rounds int) (*ColdStartBench, error) {
	if rounds < 1 {
		rounds = 1
	}
	qs := workload.GenTPCH(workload.Config{Seed: 1, N: n, SFs: []float64{1, 2, 4, 8}, Z: 2, Corr: 0.85})
	eng := engine.New(nil)
	for _, q := range qs {
		eng.Run(q.Plan)
	}
	plans := Plans(qs)
	resources := []plan.ResourceKind{plan.CPUTime, plan.LogicalIO}

	cfg := core.DefaultConfig()
	cfg.Mart.Iterations = iters
	set, err := core.TrainSet(plans, resources, core.NewScaleTable(), cfg)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "coldstartbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	pub, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	for _, r := range resources {
		if set[r] == nil {
			return nil, fmt.Errorf("coldstartbench: no %s estimator trained", r)
		}
	}
	man, err := pub.Publish(store.Snapshot{Schema: "tpch", Source: "bench", Models: set})
	if err != nil {
		return nil, err
	}

	res := &ColdStartBench{
		Queries:    len(qs),
		Iterations: iters,
	}
	for _, p := range plans {
		res.Operators += len(p.Nodes())
	}
	for _, e := range man.Models {
		if fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("v%010d", man.Version), e.File)); err == nil {
			res.ModelFileBytes += fi.Size()
		}
		if e.SlabFile != "" {
			if fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("v%010d", man.Version), e.SlabFile)); err == nil {
				res.SlabFileBytes += fi.Size()
			}
		}
		res.SlabQuantized = res.SlabQuantized || e.SlabQuantized
	}

	modes := []struct {
		name string
		slab store.SlabMode
	}{
		{"heap", store.SlabDisabled},
		{"mmap", store.SlabExact},
		{"quantized", store.SlabQuantized},
	}
	for _, m := range modes {
		st, err := store.Open(dir, store.Options{Slab: m.slab})
		if err != nil {
			return nil, err
		}
		mode := ColdStartMode{Mode: m.name}

		// Restore latency: median of rounds full-snapshot loads. The
		// loaded sets are kept alive through the memory measurement below
		// so mapped-page lifetimes match production (mappings persist).
		var millis []float64
		var loads []*store.Loaded
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			loaded, err := st.LoadVersion(man.Version)
			if err != nil {
				return nil, fmt.Errorf("coldstartbench: %s restore: %w", m.name, err)
			}
			millis = append(millis, float64(time.Since(start).Nanoseconds())/1e6)
			loads = append(loads, loaded)
		}
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if d := int64(after.HeapAlloc) - int64(before.HeapAlloc); d > 0 {
			mode.PrivateModelBytes = d / int64(rounds)
		}
		sort.Float64s(millis)
		mode.RestoreMillis = millis[len(millis)/2]

		loaded := loads[len(loads)-1]
		for _, r := range resources {
			mode.Layouts = append(mode.Layouts, loaded.Layout[r])
		}

		// Post-restore batch throughput, best of rounds: the restored
		// models must not trade restore time for prediction time.
		nPlans := 0
		for i := 0; i < rounds; i++ {
			start := time.Now()
			nPlans = 0
			for _, r := range resources {
				loaded.Models[r].PredictPlans(plans)
				nPlans += len(plans)
			}
			if pps := float64(nPlans) / time.Since(start).Seconds(); pps > mode.BatchPlansPerSec {
				mode.BatchPlansPerSec = pps
			}
		}
		runtime.KeepAlive(loads)
		res.Modes = append(res.Modes, mode)
	}

	var heapMs, mmapMs float64
	for _, m := range res.Modes {
		switch m.Mode {
		case "heap":
			heapMs = m.RestoreMillis
		case "mmap":
			mmapMs = m.RestoreMillis
		}
	}
	if mmapMs > 0 {
		res.MmapSpeedup = heapMs / mmapMs
	}
	return res, nil
}
