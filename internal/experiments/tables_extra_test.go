package experiments

import (
	"strings"
	"testing"
)

func TestTable8Shape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table8()
	if err != nil {
		t.Fatal(err)
	}
	// 7 techniques × 2 test sets.
	if len(tbl.Rows) != 14 {
		t.Fatalf("Table 8 rows = %d, want 14", len(tbl.Rows))
	}
	for _, set := range []string{"Large", "Small"} {
		mart := tbl.Get(TechMART, set)
		sc := tbl.Get(TechScaling, set)
		if mart == nil || sc == nil {
			t.Fatalf("missing rows for %s", set)
		}
		// Even with estimated features, MART degrades more than SCALING
		// under the size shift.
		if sc.Result.L1 > mart.Result.L1*1.2 {
			t.Errorf("%s: SCALING L1 %.3f much worse than MART %.3f", set, sc.Result.L1, mart.Result.L1)
		}
	}
}

func TestTable9Shape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 21 {
		t.Fatalf("Table 9 rows = %d, want 21", len(tbl.Rows))
	}
	// The paper's observation: estimated-feature errors grow on the
	// cross workloads for everyone; MART remains the weakest learned
	// model on most sets.
	martWorse := 0
	for _, set := range []string{"TPC-DS", "Real-1", "Real-2"} {
		mart := tbl.Get(TechMART, set)
		sc := tbl.Get(TechScaling, set)
		if mart.Result.L1 >= sc.Result.L1 {
			martWorse++
		}
	}
	if martWorse < 2 {
		t.Errorf("MART beat SCALING on %d/3 cross-workload sets", 3-martWorse)
	}
}

func TestTable11Shape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("Table 11 rows = %d, want 8 (4 techniques x 2 sets)", len(tbl.Rows))
	}
	sc := tbl.Get(TechScaling, "Large")
	if sc == nil || sc.Result.Buckets.NQueries == 0 {
		t.Fatal("missing SCALING/Large row")
	}
}

func TestTable12Shape(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Fatalf("Table 12 rows = %d, want 12", len(tbl.Rows))
	}
	// I/O cross-workload: aggregated over the three sets, SCALING must
	// stay competitive with the best technique (per-set comparisons are
	// too noisy at test-sized workloads; the paper-sized resbench run is
	// the authoritative comparison, see EXPERIMENTS.md).
	var scSum float64
	bestSum := 0.0
	for _, set := range []string{"TPC-DS", "Real-1", "Real-2"} {
		min := -1.0
		for _, tech := range ioTechniques() {
			row := tbl.Get(tech, set)
			if row == nil {
				t.Fatalf("missing %s/%s", tech, set)
			}
			if min < 0 || row.Result.L1 < min {
				min = row.Result.L1
			}
		}
		bestSum += min
		scSum += tbl.Get(TechScaling, set).Result.L1
	}
	if scSum > bestSum*2.5 {
		t.Errorf("SCALING aggregate I/O L1 %.2f vs best-per-set aggregate %.2f", scSum, bestSum)
	}
}

func TestTableGetAndOrdering(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Get("NOPE", "TPC-H") != nil {
		t.Fatal("Get for unknown technique returned a row")
	}
	// Rows are ordered by the paper's technique ordering.
	lastOrder := -1
	for _, row := range tbl.Rows {
		o := techniqueOrder[row.Technique]
		if o < lastOrder {
			t.Fatalf("row ordering violated at %s", row.Technique)
		}
		lastOrder = o
	}
	out := tbl.Format()
	if !strings.Contains(out, "L1 Err") || !strings.Contains(out, "%") {
		t.Fatal("Format missing headers")
	}
}

func TestRelatedWorkKCCA(t *testing.T) {
	r := sharedRunner(t)
	res, err := r.RelatedWorkKCCA()
	if err != nil {
		t.Fatal(err)
	}
	// The defining failure (§1.1): every out-of-distribution query above
	// the training max gets a capped estimate.
	if res.OutAbove == 0 {
		t.Fatal("no test queries above the training max; setup broken")
	}
	if res.OutCapped != res.OutAbove {
		t.Fatalf("%d/%d above-max queries escaped the training-max bound",
			res.OutAbove-res.OutCapped, res.OutAbove)
	}
	// And it is much worse out of distribution than in distribution.
	if res.OutDist.L1 <= res.InDist.L1 {
		t.Fatalf("KCCA out-of-distribution L1 %.2f should exceed in-distribution %.2f",
			res.OutDist.L1, res.InDist.L1)
	}
	if !strings.Contains(res.Format(), "KCCA") {
		t.Fatal("Format broken")
	}
}

func TestFigure8Format(t *testing.T) {
	r := sharedRunner(t)
	fig := r.Figure8()
	out := fig.Format()
	for _, want := range []string{"Figure 8", "observed", "fit "} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 8 format missing %q", want)
		}
	}
}
