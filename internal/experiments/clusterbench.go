package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/stream"
)

// The replica-scaling baseline behind cmd/resbench -exp clusterbench:
// at each fleet size it stands up N in-process resserve replicas
// (sharing one model registry, as a fleet restored from one store
// snapshot would) behind a real router and drives the router's
// streaming listener closed-loop, then reports estimates/s, p99 and
// the scaling efficiency vs one replica into BENCH_cluster.json.
//
// The protocol is weak scaling: per-replica offered load is held
// constant (conns × depth workers pinned to schemas the ring assigns
// to that replica), so fleet size N carries N× the clients and N× the
// total requests of fleet size 1, and efficiency is
// (throughput_N / N) / throughput_1. Schema-affinity routing is what
// makes near-linear scaling possible at all here: each schema's
// requests land on one replica's micro-batcher and prediction cache,
// so replicas proceed independently with no cross-replica
// coordination on the hot path. Replica service cycles are dominated
// by the micro-batcher's coalescing wait (MaxWait), which is how a
// single benchmark host can overlap N replicas' cycles honestly — the
// knob is recorded in the output, and the router's decision counters
// are too (spillover > 0 would mean affinity was not actually
// measured).

// ClusterBenchFleet is one fleet size's measurement.
type ClusterBenchFleet struct {
	Replicas int `json:"replicas"`
	// Requests is the total estimates driven through the router at
	// this fleet size (weak scaling: proportional to Replicas).
	Requests int `json:"requests"`
	// EstPerSec is router-side end-to-end throughput; PerReplicaPerSec
	// divides it by the fleet size.
	EstPerSec        float64 `json:"est_per_sec"`
	PerReplicaPerSec float64 `json:"per_replica_per_sec"`
	P50Micros        float64 `json:"p50_us"`
	P99Micros        float64 `json:"p99_us"`
	// Efficiency is PerReplicaPerSec / the 1-replica EstPerSec: 1.0 is
	// perfectly linear scaling.
	Efficiency float64 `json:"efficiency"`
	// Affinity/Spillover/Shed are the router's routing-decision
	// counters for this run. Spillover and Shed should be 0 — anything
	// else means the run measured overload behavior, not affinity
	// scaling.
	Affinity  uint64 `json:"affinity"`
	Spillover uint64 `json:"spillover"`
	Shed      uint64 `json:"shed"`
}

// ClusterBench is the serializable replica-scaling baseline.
type ClusterBench struct {
	Queries           int     `json:"queries"`
	Operators         int     `json:"operators"`
	Iterations        int     `json:"iterations"`
	GoMaxProcs        int     `json:"gomaxprocs"`
	SchemasPerReplica int     `json:"schemas_per_replica"`
	ConnsPerReplica   int     `json:"conns_per_replica"`
	PipelineDepth     int     `json:"pipeline_depth"`
	RequestsPerWorker int     `json:"requests_per_worker"`
	MaxWaitMicros     float64 `json:"replica_max_wait_us"`

	Fleets []ClusterBenchFleet `json:"fleets"`
	// EfficiencyAtMax is the largest fleet's efficiency — the number
	// the -cluster-efficiency-min guard checks.
	EfficiencyAtMax float64 `json:"efficiency_at_max"`
}

// clusterReplica is one in-process replica: service, stream listener
// and HTTP listener, the surfaces a real resserve process exposes.
type clusterReplica struct {
	svc  *serve.Service
	ss   *stream.Server
	hsrv *http.Server
	addr string
}

func (r *clusterReplica) close() {
	r.hsrv.Close()
	r.ss.Close()
	r.svc.Close()
}

func startClusterReplica(reg *serve.Registry, maxWait time.Duration) (*clusterReplica, error) {
	svc := serve.New(serve.Options{Registry: reg, Workers: 2, DisableTelemetry: true})
	ss, err := stream.Start("127.0.0.1:0", stream.Options{Service: svc, MaxWait: maxWait})
	if err != nil {
		svc.Close()
		return nil, err
	}
	svc.SetStreamAddr(ss.Addr())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ss.Close()
		svc.Close()
		return nil, err
	}
	hsrv := &http.Server{Handler: svc.Handler()}
	go hsrv.Serve(ln)
	return &clusterReplica{svc: svc, ss: ss, hsrv: hsrv, addr: ln.Addr().String()}, nil
}

// assignSchemas walks a synthetic schema pool ("w000", "w001", ...)
// until the ring over addrs has granted each replica perReplica
// schemas, and returns the per-replica assignments in addrs order.
// Using the same ring construction as the router makes the bench's
// idea of ownership exact, not probabilistic.
func assignSchemas(addrs []string, perReplica int) [][]string {
	ring := cluster.NewRing(addrs, 0)
	byAddr := make(map[string][]string, len(addrs))
	full := 0
	for i := 0; full < len(addrs); i++ {
		if i > 10000*len(addrs) {
			// Unreachable with a sane ring; guards against looping
			// forever if placement ever degenerates.
			break
		}
		s := fmt.Sprintf("w%03d", i)
		owner := ring.Pick(s)
		if len(byAddr[owner]) >= perReplica {
			continue
		}
		byAddr[owner] = append(byAddr[owner], s)
		if len(byAddr[owner]) == perReplica {
			full++
		}
	}
	out := make([][]string, len(addrs))
	for i, a := range addrs {
		out[i] = byAddr[a]
	}
	return out
}

// RunClusterBench measures router throughput at each fleet size in
// fleets (e.g. 1, 2, 4). n is the workload size, iters the benchmark
// model's MART iterations, schemasPer the schemas owned per replica,
// conns the streaming connections per replica's worth of load, depth
// the in-flight estimates per connection, reqs the estimates each
// worker issues in the timed run, and maxWait the replicas'
// micro-batcher coalescing bound.
func RunClusterBench(n, iters, schemasPer, conns, depth, reqs int, fleets []int, maxWait time.Duration) (*ClusterBench, error) {
	if schemasPer <= 0 {
		schemasPer = 4
	}
	if conns <= 0 {
		conns = 2
	}
	if depth <= 0 {
		depth = 4
	}
	if reqs <= 0 {
		reqs = 200
	}
	if maxWait <= 0 {
		maxWait = 4 * time.Millisecond
	}
	est, plans, err := serveBenchWorkload(n, iters)
	if err != nil {
		return nil, err
	}
	res := &ClusterBench{
		Queries:           len(plans),
		Iterations:        iters,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		SchemasPerReplica: schemasPer,
		ConnsPerReplica:   conns,
		PipelineDepth:     depth,
		RequestsPerWorker: reqs,
		MaxWaitMicros:     float64(maxWait.Microseconds()),
	}
	for _, p := range plans {
		res.Operators += len(p.Nodes())
	}
	encoded := make([]json.RawMessage, len(plans))
	for i, p := range plans {
		if encoded[i], err = plan.EncodeJSON(p); err != nil {
			return nil, err
		}
	}

	// One registry shared by every replica at every fleet size: the
	// in-process stand-in for a fleet restored from one store snapshot.
	// The wildcard schema serves every synthetic schema name the ring
	// assignment produces.
	reg := serve.NewRegistry()
	reg.Publish("", est)

	for _, size := range fleets {
		fleet, err := runClusterFleet(reg, encoded, size, schemasPer, conns, depth, reqs, maxWait)
		if err != nil {
			return nil, fmt.Errorf("clusterbench: fleet of %d: %w", size, err)
		}
		res.Fleets = append(res.Fleets, *fleet)
	}
	// Efficiency is relative to the measured 1-replica run when the
	// sweep has one (the usual 1,2,4 shape), else to the smallest
	// fleet's per-replica throughput.
	if len(res.Fleets) > 0 {
		base := res.Fleets[0].PerReplicaPerSec
		for i := range res.Fleets {
			res.Fleets[i].Efficiency = res.Fleets[i].PerReplicaPerSec / base
		}
		res.EfficiencyAtMax = res.Fleets[len(res.Fleets)-1].Efficiency
	}
	return res, nil
}

func runClusterFleet(reg *serve.Registry, encoded []json.RawMessage, size, schemasPer, conns, depth, reqs int, maxWait time.Duration) (*ClusterBenchFleet, error) {
	replicas := make([]*clusterReplica, 0, size)
	defer func() {
		for _, r := range replicas {
			r.close()
		}
	}()
	addrs := make([]string, 0, size)
	for i := 0; i < size; i++ {
		r, err := startClusterReplica(reg, maxWait)
		if err != nil {
			return nil, err
		}
		replicas = append(replicas, r)
		addrs = append(addrs, r.addr)
	}

	// The router cache is disabled so forwarding is what gets
	// measured; with it on, a repeated-body closed loop measures the
	// router's LRU instead of the fleet.
	rt, err := cluster.New(cluster.Options{
		Replicas:     addrs,
		CacheEntries: -1,
		PollInterval: 500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	streamAddr, err := rt.StartStream("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	// Pre-encode each worker's request bodies: workers are pinned to
	// the schemas the ring assigns to their replica, so every request
	// is an affinity hit and replicas proceed independently.
	assigned := assignSchemas(addrs, schemasPer)
	type workload struct{ bodies [][]byte }
	var workers []workload
	for ri := range replicas {
		for c := 0; c < conns*depth; c++ {
			schema := assigned[ri][c%len(assigned[ri])]
			w := workload{bodies: make([][]byte, len(encoded))}
			for i, enc := range encoded {
				b, err := json.Marshal(&stream.Request{Schema: schema, Resource: "cpu", Plan: enc})
				if err != nil {
					return nil, err
				}
				w.bodies[i] = b
			}
			workers = append(workers, w)
		}
	}

	// One streaming connection to the router per conns slot, shared by
	// depth workers — the same shape streambench drives a single
	// replica with.
	clients := make([]*stream.Client, size*conns)
	for i := range clients {
		if clients[i], err = stream.Dial(streamAddr); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	run := func(perWorker int, record bool) ([]time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, len(workers))
		lat := make([][]time.Duration, len(workers))
		for wi := range workers {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				cl := clients[wi/depth]
				bodies := workers[wi].bodies
				for r := 0; r < perWorker; r++ {
					t0 := time.Now()
					if _, err := cl.EstimateBytes(context.Background(), bodies[(wi+r)%len(bodies)]); err != nil {
						errs <- err
						return
					}
					if record {
						lat[wi] = append(lat[wi], time.Since(t0))
					}
				}
			}(wi)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return nil, err
		default:
		}
		var flat []time.Duration
		for _, l := range lat {
			flat = append(flat, l...)
		}
		return flat, nil
	}

	// Warm pass: every (schema, plan) body once, so the timed run
	// measures each replica's steady state (prediction caches hot)
	// rather than first-touch model evaluation.
	if _, err := run(len(encoded), false); err != nil {
		return nil, err
	}

	start := time.Now()
	lat, err := run(reqs, true)
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)

	total := len(workers) * reqs
	m := rt.Metrics()
	fleet := &ClusterBenchFleet{
		Replicas:  size,
		Requests:  total,
		EstPerSec: float64(total) / dur.Seconds(),
		Affinity:  m.Decisions.Affinity,
		Spillover: m.Decisions.Spillover,
		Shed:      m.Decisions.Shed,
	}
	fleet.PerReplicaPerSec = fleet.EstPerSec / float64(size)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		fleet.P50Micros = float64(lat[len(lat)/2].Microseconds())
		fleet.P99Micros = float64(lat[len(lat)*99/100].Microseconds())
	}
	return fleet, nil
}
