package experiments

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/workload"
)

// The accuracy baseline behind cmd/resbench -exp accuracybench: train
// CPU and I/O models on one workload, replay a held-out workload
// (different seed, same distribution) through the simulator, and record
// the signed log-ratio error distribution of the predictions — overall
// per plan and broken down per operator kind — into BENCH_accuracy.json
// so model quality is tracked across PRs the same way training and
// serving performance are. The error populations run through the same
// obs.ErrorHistogram the online feedback telemetry uses, so offline
// baseline and production dashboards speak identical quantities.

// AccuracyStats summarizes one error population. Quantiles are signed
// log-ratios ln(predicted/actual) — negative means the model
// under-estimated — and the within fractions are the empirical coverage
// of the paper's ratio-error bands over the scored pairs.
type AccuracyStats struct {
	Count      uint64  `json:"count"`
	UnderCount uint64  `json:"under_count"`
	OverCount  uint64  `json:"over_count"`
	ErrP50     float64 `json:"err_p50"`
	ErrP90     float64 `json:"err_p90"`
	ErrP99     float64 `json:"err_p99"`
	MaxAbs     float64 `json:"max_abs"`
	Within15x  float64 `json:"within_1_5x"`
	Within2x   float64 `json:"within_2x"`
}

// AccuracyOperator is one operator kind's error population.
type AccuracyOperator struct {
	Op string `json:"op"`
	AccuracyStats
}

// AccuracyResource is one resource's held-out accuracy: plan-level
// totals plus the per-operator breakdown (sorted by operator name).
type AccuracyResource struct {
	Resource  string             `json:"resource"`
	Plan      AccuracyStats      `json:"plan"`
	Operators []AccuracyOperator `json:"operators"`
}

// AccuracyBench is the serializable accuracy baseline.
type AccuracyBench struct {
	TrainQueries   int                `json:"train_queries"`
	HoldoutQueries int                `json:"holdout_queries"`
	Iterations     int                `json:"iterations"`
	TrainSeed      uint64             `json:"train_seed"`
	HoldoutSeed    uint64             `json:"holdout_seed"`
	Resources      []AccuracyResource `json:"resources"`
}

// accAccum accumulates one error population: the histogram for
// quantiles plus exact coverage counters over the scored pairs.
type accAccum struct {
	hist     obs.ErrorHistogram
	scored   uint64
	within15 uint64
	within2  uint64
}

func (a *accAccum) observe(predicted, actual float64) {
	a.hist.ObserveRatio(predicted, actual)
	if !(actual > 0) || !(predicted > 0) {
		return
	}
	a.scored++
	e := math.Abs(math.Log(predicted / actual))
	if e <= math.Log(1.5) {
		a.within15++
	}
	if e <= math.Log(2) {
		a.within2++
	}
}

func (a *accAccum) stats() AccuracyStats {
	snap := a.hist.Snapshot()
	sum := snap.Summarize()
	st := AccuracyStats{
		Count:      sum.Count,
		UnderCount: sum.UnderCount,
		OverCount:  sum.OverCount,
		ErrP50:     sum.P50,
		ErrP90:     sum.P90,
		ErrP99:     sum.P99,
		MaxAbs:     sum.MaxAbs,
	}
	if a.scored > 0 {
		st.Within15x = float64(a.within15) / float64(a.scored)
		st.Within2x = float64(a.within2) / float64(a.scored)
	}
	return st
}

// RunAccuracyBench trains CPU and I/O models on a seed-1 workload of n
// queries and evaluates them on a disjoint seed-999 replay of the same
// size, returning per-plan and per-operator error quantiles and
// coverage for every resource.
func RunAccuracyBench(n, iters int) (*AccuracyBench, error) {
	const trainSeed, holdSeed = 1, 999
	cfg := workload.Config{Seed: trainSeed, N: n, SFs: []float64{1, 2, 4, 8}, Z: 2, Corr: 0.85}
	train := workload.GenTPCH(cfg)
	cfg.Seed = holdSeed
	hold := workload.GenTPCH(cfg)
	eng := engine.New(nil)
	for _, q := range train {
		eng.Run(q.Plan)
	}
	for _, q := range hold {
		eng.Run(q.Plan)
	}

	ccfg := core.DefaultConfig()
	ccfg.Mart.Iterations = iters
	resources := plan.ResourceKinds()
	ests, err := core.TrainSet(Plans(train), resources, core.NewScaleTable(), ccfg)
	if err != nil {
		return nil, err
	}

	res := &AccuracyBench{
		TrainQueries:   len(train),
		HoldoutQueries: len(hold),
		Iterations:     iters,
		TrainSeed:      trainSeed,
		HoldoutSeed:    holdSeed,
	}
	for _, r := range resources {
		est := ests[r]
		var planAcc accAccum
		ops := make(map[plan.OpKind]*accAccum)
		for _, q := range hold {
			// Explain replays the exact prediction pass with per-operator
			// estimates broken out; its Total is bit-identical to
			// PredictPlan, so plan-level stats match what serving reports.
			x := est.Explain(q.Plan)
			planAcc.observe(x.Total, q.Plan.TotalActual().Get(r))
			nodes := q.Plan.Nodes()
			for i, ne := range x.Nodes {
				a := ops[ne.Kind]
				if a == nil {
					a = &accAccum{}
					ops[ne.Kind] = a
				}
				a.observe(ne.Estimate, nodes[i].Actual.Get(r))
			}
		}
		ar := AccuracyResource{Resource: r.String(), Plan: planAcc.stats()}
		for kind, a := range ops {
			st := a.stats()
			if st.Count == 0 {
				// Operators whose actuals are always zero for this
				// resource (e.g. ComputeScalar does no I/O) never score.
				continue
			}
			ar.Operators = append(ar.Operators, AccuracyOperator{Op: kind.String(), AccuracyStats: st})
		}
		sort.Slice(ar.Operators, func(i, j int) bool { return ar.Operators[i].Op < ar.Operators[j].Op })
		res.Resources = append(res.Resources, ar)
	}
	return res, nil
}
