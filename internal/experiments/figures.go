package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Series is one named point series of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproducible figure: point series plus derived statistics.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Format prints a compact representation: per-series summary statistics
// and a downsampled point listing.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Name, f.Title)
	fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, s := range f.Series {
		corr := stats.Pearson(s.X, s.Y)
		fmt.Fprintf(&b, "series %-28s n=%-5d corr=%.3f\n", s.Name, len(s.X), corr)
		step := len(s.X)/8 + 1
		for i := 0; i < len(s.X); i += step {
			fmt.Fprintf(&b, "  %14.2f %14.2f\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Figure1 — optimizer estimates vs actual CPU time for TPC-H queries
// whose cardinality estimates are near-exact (within 90%–110% at every
// node), showing the error of the hand-constructed cost model itself.
func (r *Runner) Figure1() *Figure {
	var xs, ys []float64
	model := optimizer.DefaultModel()
	for _, q := range r.W.TPCH {
		ok := true
		q.Plan.Walk(func(n *plan.Node) {
			if n.Out.Rows < 1 {
				return
			}
			ratio := n.EstOut.Rows / n.Out.Rows
			if ratio < 0.9 || ratio > 1.1 {
				ok = false
			}
		})
		if !ok {
			continue
		}
		xs = append(xs, model.PlanCost(q.Plan).CPU)
		ys = append(ys, q.Plan.TotalActual().CPU)
	}
	slope := stats.FitScalar(xs, ys)
	var fitX, fitY []float64
	if len(xs) > 0 {
		lo, hi := stats.MinMax(xs)
		fitX = []float64{lo, hi}
		fitY = []float64{slope * lo, slope * hi}
	}
	return &Figure{
		Name:   "Figure 1",
		Title:  "Optimizer estimates can incur significant errors",
		XLabel: "optimizer-estimated CPU cost (units)",
		YLabel: "actual CPU time (ms)",
		Series: []Series{
			{Name: "queries", X: xs, Y: ys},
			{Name: "least-squares line", X: fitX, Y: fitY},
		},
		Notes: []string{fmt.Sprintf("queries with near-exact cardinalities: %d; fitted slope %.3f", len(xs), slope)},
	}
}

// Figure2 — SCALING estimates vs actual CPU time on the TPC-H test
// split: the statistical-techniques counterpart of Figure 1.
func (r *Runner) Figure2() (*Figure, error) {
	train, test := r.SplitTPCH()
	ts, err := TrainTechniques(train, r.cfgFor(plan.CPUTime, features.Exact, []string{TechScaling}))
	if err != nil {
		return nil, err
	}
	m := ts.Models[TechScaling]
	var xs, ys []float64
	for _, p := range test {
		xs = append(xs, p.TotalActual().CPU)
		ys = append(ys, m.PredictPlan(p))
	}
	return &Figure{
		Name:   "Figure 2",
		Title:  "Statistical techniques can improve estimates significantly",
		XLabel: "actual CPU time (ms)",
		YLabel: "estimated CPU time (ms)",
		Series: []Series{{Name: "SCALING estimates", X: xs, Y: ys}},
	}, nil
}

// scanExtrapolationData trains an estimator on the scan operators of
// small-SF queries and evaluates per-scan predictions on large-SF
// queries — the Figures 3/6 setup.
func (r *Runner) scanExtrapolationData(disableScaling bool) (*Figure, error) {
	small, large := r.SplitBySF()
	cfg := core.DefaultConfig()
	cfg.Mart.Iterations = r.Setup.MartIterations
	cfg.DisableScaling = disableScaling
	est, err := core.Train(small, plan.CPUTime, r.ScaleTable, cfg)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, p := range large {
		vecs := features.ExtractPlan(p, features.Exact)
		for i, n := range p.Nodes() {
			if n.Kind != plan.TableScan && n.Kind != plan.IndexScan {
				continue
			}
			om, ok := est.Ops[n.Kind]
			if !ok {
				continue
			}
			xs = append(xs, n.Actual.CPU)
			ys = append(ys, om.PredictVector(&vecs[i]))
		}
	}
	name, title := "Figure 3", "Boosted regression trees do not generalize beyond the training data"
	if !disableScaling {
		name, title = "Figure 6", "Combining MART and Scaling: accuracy for feature values not seen in training"
	}
	res := stats.Evaluate(ys, xs)
	return &Figure{
		Name:   name,
		Title:  title,
		XLabel: "actual scan CPU time (ms)",
		YLabel: "estimated scan CPU time (ms)",
		Series: []Series{{Name: "scan operators (SF>=6)", X: xs, Y: ys}},
		Notes: []string{fmt.Sprintf("train: scans at SF<=4; L1=%.2f, R<=1.5: %.1f%%, R>2: %.1f%%",
			res.L1, res.Buckets.LE15*100, res.Buckets.GT2*100)},
	}, nil
}

// Figure3 — MART-only scan models trained on small scale factors
// systematically underestimate on large ones.
func (r *Runner) Figure3() (*Figure, error) { return r.scanExtrapolationData(true) }

// Figure6 — the same setup with scaling restores accuracy.
func (r *Runner) Figure6() (*Figure, error) { return r.scanExtrapolationData(false) }

// Figure7 — evaluating scaling functions for the CPU consumption of
// sort operators: the n·log n form fits; the quadratic form does not.
func (r *Runner) Figure7() *Figure {
	b := workload.NewBuilder(workload.DBFor("tpch", 2, 1), 1)
	// A wide range is needed to separate n·log n from linear-with-
	// intercept under measurement noise: the log factor changes ~2.3x
	// between the endpoints.
	sizes := workload.GeometricSizes(1e3, 6e6, 18)
	obs := core.RunSweep(r.Engine, workload.SweepSort(b, sizes, 64, 2))
	return sweepFigure("Figure 7", "Scaling functions for sort CPU: n·log n fits with high accuracy",
		"CIN (input tuples)", obs)
}

// Figure8 — evaluating scaling functions for index nested loop joins:
// CPU grows with CIN_outer × log(CIN_inner).
func (r *Runner) Figure8() *Figure {
	b := workload.NewBuilder(workload.DBFor("tpch", 2, 1), 1)
	innerSizes := workload.GeometricSizes(1e4, 1e8, 14)
	pts := workload.SweepNestedLoopInner(b, innerSizes, 50_000)
	obs := make([]core.SweepObservation, 0, len(pts))
	for _, pt := range pts {
		r.Engine.Run(pt.Plan)
		// Total join CPU: the NL node plus its seek inner.
		cpu := pt.Node.Actual.CPU + pt.Node.Children[1].Actual.CPU
		obs = append(obs, core.SweepObservation{Value: pt.Value, CPU: cpu})
	}
	return sweepFigure("Figure 8", "Scaling functions for index nested loop CPU: outer × log(inner) fits best",
		"CIN_inner (inner table tuples)", obs)
}

// sweepFigure builds the observation series plus the best and worst
// fitted candidate curves, as the paper's figures juxtapose them.
func sweepFigure(name, title, xlabel string, obs []core.SweepObservation) *Figure {
	values := make([]float64, len(obs))
	ys := make([]float64, len(obs))
	for i, o := range obs {
		values[i] = o.Value
		ys[i] = o.CPU
	}
	fits := core.FitCurve(values, ys)
	fig := &Figure{
		Name:   name,
		Title:  title,
		XLabel: xlabel,
		YLabel: "CPU time (ms)",
		Series: []Series{{Name: "observed", X: values, Y: ys}},
	}
	for _, fr := range fits {
		curve := Series{Name: fmt.Sprintf("fit %s (relL2=%.3f)", fr.Kind, fr.RelL2)}
		for _, v := range values {
			curve.X = append(curve.X, v)
			curve.Y = append(curve.Y, fr.C+fr.Alpha*evalKind(fr.Kind, v))
		}
		fig.Series = append(fig.Series, curve)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("best fit: %s", fits[0].Kind))
	return fig
}

// evalKind exposes single-input scale-form evaluation for curves.
func evalKind(k core.ScaleKind, v float64) float64 {
	fn := core.ScaleFn{Kind: k, F1: 0}
	var vec features.Vector
	vec.Set(0, v)
	return fn.Eval(&vec)
}

// PredictionCost measures the per-call estimation overhead (§7.3),
// returning seconds per operator-level prediction.
func (r *Runner) PredictionCost() (float64, error) {
	train, test := r.SplitTPCH()
	cfg := core.DefaultConfig()
	cfg.Mart.Iterations = r.Setup.MartIterations
	est, err := core.Train(train, plan.CPUTime, r.ScaleTable, cfg)
	if err != nil {
		return 0, err
	}
	var calls int
	for _, p := range test {
		calls += p.NumNodes()
	}
	if calls == 0 {
		return 0, nil
	}
	start := nowSeconds()
	for _, p := range test {
		est.PredictPlan(p)
	}
	return (nowSeconds() - start) / float64(calls), nil
}

// ModelSizeBytes trains the full SCALING model set and returns its
// total encoded size (§7.3 memory requirements).
func (r *Runner) ModelSizeBytes() (int, error) {
	train, _ := r.SplitTPCH()
	cfg := core.DefaultConfig()
	cfg.Mart.Iterations = r.Setup.MartIterations
	est, err := core.Train(train, plan.CPUTime, r.ScaleTable, cfg)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, om := range est.Ops {
		for _, c := range om.Candidates {
			buf, err := c.Mart.EncodeBinary()
			if err != nil {
				return 0, err
			}
			total += len(buf)
		}
	}
	return total, nil
}

// nowSeconds wraps the monotonic clock for timing.
func nowSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
