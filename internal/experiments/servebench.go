package experiments

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The serving-latency baseline behind cmd/resbench -exp servebench: it
// drives the estimation service the way a client would — single-plan
// requests uncached and cached, plus one large batch — and records
// p50/p99 latency and throughput into BENCH_serve.json so the serving
// trajectory is tracked across PRs alongside the training baseline.
// The same run doubles as the telemetry overhead guard: the cached
// single-request loop is timed with telemetry on and off, and the
// relative difference is reported (and asserted by resbench).

// ServeBenchMode is the latency/throughput summary of one serving mode.
type ServeBenchMode struct {
	P50Micros      float64 `json:"p50_us"`
	P99Micros      float64 `json:"p99_us"`
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// ServeBench is the serializable serving baseline.
type ServeBench struct {
	Queries    int    `json:"queries"`
	Operators  int    `json:"operators"`
	Iterations int    `json:"iterations"`
	Workers    int    `json:"workers"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Rounds     int    `json:"rounds"`
	Resource   string `json:"resource"`

	// Uncached serves every request with the prediction cache disabled
	// (every operator evaluates the model); Cached measures the warm
	// steady state.
	Uncached ServeBenchMode `json:"uncached"`
	Cached   ServeBenchMode `json:"cached"`
	// BatchPlansPerSec is /estimate/batch throughput: the full workload
	// submitted as one warm batch.
	BatchPlansPerSec float64 `json:"batch_plans_per_sec"`

	// TelemetryOverheadPct compares the cached single-request loop with
	// telemetry on vs. Options.DisableTelemetry, as a percentage of the
	// disabled run (medians of Rounds runs each). The guard resbench
	// enforces; can come out slightly negative on a noisy machine.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
}

// serveBenchWorkload trains one quick CPU model over a TPC-H-shaped
// workload and returns it with the executed plans.
func serveBenchWorkload(n, iters int) (*core.Estimator, []*plan.Plan, error) {
	qs := workload.GenTPCH(workload.Config{Seed: 1, N: n, SFs: []float64{1, 2, 4, 8}, Z: 2, Corr: 0.85})
	eng := engine.New(nil)
	for _, q := range qs {
		eng.Run(q.Plan)
	}
	plans := Plans(qs)
	cfg := core.DefaultConfig()
	cfg.Mart.Iterations = iters
	est, err := core.Train(plans, plan.CPUTime, core.NewScaleTable(), cfg)
	if err != nil {
		return nil, nil, err
	}
	return est, plans, nil
}

// newBenchService builds a service with the benchmark model published.
func newBenchService(est *core.Estimator, cacheEntries int, disableTelemetry bool) *serve.Service {
	reg := serve.NewRegistry()
	reg.Publish("tpch", est)
	return serve.New(serve.Options{
		Registry:         reg,
		CacheEntries:     cacheEntries,
		Workers:          2,
		DisableTelemetry: disableTelemetry,
	})
}

// drive runs every plan through svc once, sequentially, recording each
// request's latency into lat (appended) and returning it.
func drive(svc *serve.Service, plans []*plan.Plan, lat []time.Duration) ([]time.Duration, error) {
	ctx := context.Background()
	for _, p := range plans {
		start := time.Now()
		_, err := svc.Estimate(ctx, serve.Request{Schema: "tpch", Resource: plan.CPUTime, Plan: p})
		if err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(start))
	}
	return lat, nil
}

func summarizeMode(lat []time.Duration) ServeBenchMode {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / 1e3
	}
	return ServeBenchMode{
		P50Micros:      pick(0.50),
		P99Micros:      pick(0.99),
		RequestsPerSec: float64(len(sorted)) / total.Seconds(),
	}
}

// timedRounds runs fn `rounds` times and returns the median wall-clock
// — the stable central tendency for an overhead comparison (means are
// dragged by GC pauses and scheduler noise).
func timedRounds(rounds int, fn func() error) (time.Duration, error) {
	times := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// RunServeBench measures serving latency and throughput plus the
// telemetry overhead. n is the workload size (queries), iters the MART
// iterations of the quick benchmark model, rounds the measurement
// repetitions per mode (median taken).
func RunServeBench(n, iters, rounds int) (*ServeBench, error) {
	if rounds < 3 {
		rounds = 3
	}
	est, plans, err := serveBenchWorkload(n, iters)
	if err != nil {
		return nil, err
	}
	res := &ServeBench{
		Queries:    len(plans),
		Iterations: iters,
		Workers:    2,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rounds:     rounds,
		Resource:   plan.CPUTime.String(),
	}
	for _, p := range plans {
		res.Operators += len(p.Nodes())
	}

	// Uncached: cache disabled outright, so every request pays full
	// model evaluation. One warmup pass, then `rounds` measured passes
	// pooled into one latency population.
	{
		svc := newBenchService(est, -1, false)
		if _, err := drive(svc, plans, nil); err != nil {
			svc.Close()
			return nil, err
		}
		var lat []time.Duration
		for r := 0; r < rounds; r++ {
			if lat, err = drive(svc, plans, lat); err != nil {
				svc.Close()
				return nil, err
			}
		}
		svc.Close()
		res.Uncached = summarizeMode(lat)
	}

	// Cached + batch throughput on one warm service.
	{
		svc := newBenchService(est, 1<<16, false)
		if _, err := drive(svc, plans, nil); err != nil { // warm the cache
			svc.Close()
			return nil, err
		}
		var lat []time.Duration
		for r := 0; r < rounds; r++ {
			if lat, err = drive(svc, plans, lat); err != nil {
				svc.Close()
				return nil, err
			}
		}
		res.Cached = summarizeMode(lat)

		batch := serve.BatchRequest{Schema: "tpch", Resource: plan.CPUTime, Plans: plans, Timeout: time.Minute}
		med, err := timedRounds(rounds, func() error {
			_, err := svc.EstimateBatch(context.Background(), batch)
			return err
		})
		svc.Close()
		if err != nil {
			return nil, err
		}
		res.BatchPlansPerSec = float64(len(plans)) / med.Seconds()
	}

	// Telemetry overhead guard: the same cached request loop with
	// telemetry on vs. disabled, median of `rounds` runs each,
	// interleaved so thermal/scheduler drift hits both configurations
	// equally.
	{
		on := newBenchService(est, 1<<16, false)
		off := newBenchService(est, 1<<16, true)
		warm := func(svc *serve.Service) error { _, err := drive(svc, plans, nil); return err }
		if err := warm(on); err == nil {
			err = warm(off)
		}
		if err != nil {
			on.Close()
			off.Close()
			return nil, err
		}
		pass := func(svc *serve.Service) func() error {
			return func() error { _, err := drive(svc, plans, nil); return err }
		}
		onTimes := make([]time.Duration, 0, rounds)
		offTimes := make([]time.Duration, 0, rounds)
		for r := 0; r < rounds; r++ {
			tOn, err := timedRounds(1, pass(on))
			if err == nil {
				var tOff time.Duration
				tOff, err = timedRounds(1, pass(off))
				offTimes = append(offTimes, tOff)
			}
			if err != nil {
				on.Close()
				off.Close()
				return nil, err
			}
			onTimes = append(onTimes, tOn)
		}
		on.Close()
		off.Close()
		sort.Slice(onTimes, func(i, j int) bool { return onTimes[i] < onTimes[j] })
		sort.Slice(offTimes, func(i, j int) bool { return offTimes[i] < offTimes[j] })
		medOn := onTimes[len(onTimes)/2]
		medOff := offTimes[len(offTimes)/2]
		res.TelemetryOverheadPct = (float64(medOn) - float64(medOff)) / float64(medOff) * 100
	}
	return res, nil
}
