package experiments

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/stats"
)

// RelatedWorkKCCA reproduces the §1.1/§2 argument against the
// plan-template nearest-neighbour estimator of [15]: trained on
// small-scale-factor TPC-H queries and applied to queries with much
// larger resource usage, its estimates are bounded by the largest
// training observation, so every sufficiently large query is
// underestimated. Returns the (in-distribution, out-of-distribution)
// evaluation results plus the bound-violation count.
type KCCAResult struct {
	InDist    stats.EvalResult
	OutDist   stats.EvalResult
	TrainMax  float64
	OutAbove  int // out-of-distribution queries whose truth exceeds TrainMax
	OutCapped int // ... all of which receive estimates <= TrainMax
}

// RelatedWorkKCCA runs the experiment on the runner's workloads.
func (r *Runner) RelatedWorkKCCA() (*KCCAResult, error) {
	small, large := r.SplitBySF()
	cut := len(small) * 8 / 10
	train, inTest := small[:cut], small[cut:]
	ts, err := TrainTechniques(train, TrainConfig{
		Resource:   plan.CPUTime,
		Techniques: []string{TechKCCA},
	})
	if err != nil {
		return nil, err
	}
	m := ts.Models[TechKCCA]

	evalOn := func(set []*plan.Plan) stats.EvalResult {
		var est, truth []float64
		for _, p := range set {
			e := m.PredictPlan(p)
			if e <= 0 {
				e = 1e-6
			}
			est = append(est, e)
			truth = append(truth, p.TotalActual().CPU)
		}
		return stats.Evaluate(est, truth)
	}

	var trainMax float64
	for _, p := range train {
		if c := p.TotalActual().CPU; c > trainMax {
			trainMax = c
		}
	}
	res := &KCCAResult{
		InDist:   evalOn(inTest),
		OutDist:  evalOn(large),
		TrainMax: trainMax,
	}
	for _, p := range large {
		if p.TotalActual().CPU <= trainMax {
			continue
		}
		res.OutAbove++
		if m.PredictPlan(p) <= trainMax*1.0000001 {
			res.OutCapped++
		}
	}
	return res, nil
}

// Format renders the experiment summary.
func (k *KCCAResult) Format() string {
	return fmt.Sprintf(
		"KCCA-style template kNN ([15], §2):\n"+
			"  in-distribution:  L1=%.2f, R<=1.5: %.1f%%\n"+
			"  out-of-distribution (larger data): L1=%.2f, R>2: %.1f%%\n"+
			"  %d/%d queries above the training max (%.0f ms) — all %d capped at it\n",
		k.InDist.L1, k.InDist.Buckets.LE15*100,
		k.OutDist.L1, k.OutDist.Buckets.GT2*100,
		k.OutCapped, k.OutAbove, k.TrainMax, k.OutCapped)
}
