package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/features"
	"repro/internal/mart"
	"repro/internal/plan"
	"repro/internal/xrand"
)

// Table4 — training and testing on TPC-H with exact features (CPU).
func (r *Runner) Table4() (*Table, error) {
	train, test := r.SplitTPCH()
	return r.runTable("Table 4", "Training and Testing on TPC-H (exact features)",
		train, map[string][]*plan.Plan{"TPC-H": test},
		r.cfgFor(plan.CPUTime, features.Exact, cpuTechniques(features.Exact)))
}

// Table5 — train small scale factors / test large and the reverse,
// exact features (CPU).
func (r *Runner) Table5() (*Table, error) {
	small, large := r.SplitBySF()
	cfg := r.cfgFor(plan.CPUTime, features.Exact, cpuTechniques(features.Exact))
	t1, err := r.runTable("", "", small, map[string][]*plan.Plan{"Large": large}, cfg)
	if err != nil {
		return nil, err
	}
	t2, err := r.runTable("", "", large, map[string][]*plan.Plan{"Small": small}, cfg)
	if err != nil {
		return nil, err
	}
	out := &Table{
		Name:  "Table 5",
		Title: "Training on TPC-H, Testing with different Data Distributions (exact features)",
		Rows:  append(t1.Rows, t2.Rows...),
	}
	return out, nil
}

// Table6 — train on TPC-H, test on TPC-DS / Real-1 / Real-2, exact
// features (CPU).
func (r *Runner) Table6() (*Table, error) {
	return r.runTable("Table 6", "Training on TPC-H, Testing on different Workloads/Data (exact features)",
		Plans(r.W.TPCH), map[string][]*plan.Plan{
			"TPC-DS": Plans(r.W.TPCDS),
			"Real-1": Plans(r.W.Real1),
			"Real-2": Plans(r.W.Real2),
		},
		r.cfgFor(plan.CPUTime, features.Exact, cpuTechniques(features.Exact)))
}

// Table7 — Table 4 with optimizer-estimated features (adds OPT).
func (r *Runner) Table7() (*Table, error) {
	train, test := r.SplitTPCH()
	return r.runTable("Table 7", "Training and Testing on TPC-H (optimizer-estimated features)",
		train, map[string][]*plan.Plan{"TPC-H": test},
		r.cfgFor(plan.CPUTime, features.Estimated, cpuTechniques(features.Estimated)))
}

// Table8 — Table 5 with optimizer-estimated features.
func (r *Runner) Table8() (*Table, error) {
	small, large := r.SplitBySF()
	cfg := r.cfgFor(plan.CPUTime, features.Estimated, cpuTechniques(features.Estimated))
	t1, err := r.runTable("", "", small, map[string][]*plan.Plan{"Large": large}, cfg)
	if err != nil {
		return nil, err
	}
	t2, err := r.runTable("", "", large, map[string][]*plan.Plan{"Small": small}, cfg)
	if err != nil {
		return nil, err
	}
	return &Table{
		Name:  "Table 8",
		Title: "Training on TPC-H, Testing with different Data Distributions (optimizer-estimated features)",
		Rows:  append(t1.Rows, t2.Rows...),
	}, nil
}

// Table9 — Table 6 with optimizer-estimated features.
func (r *Runner) Table9() (*Table, error) {
	return r.runTable("Table 9", "Training on TPC-H, Testing on different Workloads/Data (optimizer-estimated features)",
		Plans(r.W.TPCH), map[string][]*plan.Plan{
			"TPC-DS": Plans(r.W.TPCDS),
			"Real-1": Plans(r.W.Real1),
			"Real-2": Plans(r.W.Real2),
		},
		r.cfgFor(plan.CPUTime, features.Estimated, cpuTechniques(features.Estimated)))
}

// Table10 — training and testing on TPC-H, logical I/O (estimated
// features, the §7.2 setup).
func (r *Runner) Table10() (*Table, error) {
	train, test := r.SplitTPCH()
	return r.runTable("Table 10", "Training and Testing on TPC-H (I/O operations)",
		train, map[string][]*plan.Plan{"TPC-H": test},
		r.cfgFor(plan.LogicalIO, features.Estimated, ioTechniques()))
}

// Table11 — I/O with the small/large data-distribution split.
func (r *Runner) Table11() (*Table, error) {
	small, large := r.SplitBySF()
	cfg := r.cfgFor(plan.LogicalIO, features.Estimated, ioTechniques())
	t1, err := r.runTable("", "", small, map[string][]*plan.Plan{"Large": large}, cfg)
	if err != nil {
		return nil, err
	}
	t2, err := r.runTable("", "", large, map[string][]*plan.Plan{"Small": small}, cfg)
	if err != nil {
		return nil, err
	}
	return &Table{
		Name:  "Table 11",
		Title: "Training on TPC-H, Testing with different Data Distributions (I/O operations)",
		Rows:  append(t1.Rows, t2.Rows...),
	}, nil
}

// Table12 — I/O, cross-workload generalization.
func (r *Runner) Table12() (*Table, error) {
	return r.runTable("Table 12", "Training on TPC-H, Testing on different Workloads/Data (I/O operations)",
		Plans(r.W.TPCH), map[string][]*plan.Plan{
			"TPC-DS": Plans(r.W.TPCDS),
			"Real-1": Plans(r.W.Real1),
			"Real-2": Plans(r.W.Real2),
		},
		r.cfgFor(plan.LogicalIO, features.Estimated, ioTechniques()))
}

// Table13Result is one row of the training-time table.
type Table13Result struct {
	Examples int
	Seconds  float64
}

// Table13 — MART training times vs number of training examples (§7.3).
// sizes defaults to the paper's 5K..160K doubling series; iterations to
// the paper's M = 1K.
func Table13(sizes []int, iterations int) []Table13Result {
	if len(sizes) == 0 {
		sizes = []int{5000, 10000, 20000, 40000, 80000, 160000}
	}
	if iterations <= 0 {
		iterations = 1000
	}
	// Synthetic operator-like training data: 10 features, a nonlinear
	// target, matching the dimensionality of the operator models.
	rng := xrand.New(99)
	gen := func(n int) ([][]float64, []float64) {
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, 10)
			for f := range row {
				row[f] = rng.Range(0, 1000)
			}
			xs[i] = row
			ys[i] = row[0]*2 + row[1]*row[1]/500 + row[2]
			if row[3] > 500 {
				ys[i] += 300
			}
		}
		return xs, ys
	}
	var out []Table13Result
	for _, n := range sizes {
		xs, ys := gen(n)
		cfg := mart.DefaultConfig()
		cfg.Iterations = iterations
		start := time.Now()
		if _, err := mart.Train(xs, ys, cfg); err != nil {
			panic(err)
		}
		out = append(out, Table13Result{Examples: n, Seconds: time.Since(start).Seconds()})
	}
	return out
}

// FormatTable13 renders the training-time rows.
func FormatTable13(rows []Table13Result, iterations int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 13 — Training Times (seconds) for M=%d boosting iterations\n", iterations)
	fmt.Fprintf(&b, "%-12s", "Examples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d", r.Examples)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "Time (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.2f", r.Seconds)
	}
	b.WriteByte('\n')
	return b.String()
}
