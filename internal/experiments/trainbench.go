package experiments

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/workload"
)

// The training-throughput baseline behind cmd/resbench -exp trainbench:
// it times the full bootstrap-shaped training sweep — both resources,
// every (operator × candidate scale-set) combination — at one worker
// and at GOMAXPROCS, so the BENCH_train.json it feeds tracks the
// training-performance trajectory across PRs the same way the serving
// benchmarks track the estimation hot path.

// TrainBenchRun is one timed training pass at a fixed worker count.
type TrainBenchRun struct {
	Workers       int     `json:"workers"`
	Seconds       float64 `json:"seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// SpeedupVsSequential is this run's throughput over the 1-worker
	// run's (1.0 for the sequential run itself).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
}

// TrainBench is the serializable training-throughput baseline.
type TrainBench struct {
	Queries    int             `json:"queries"`
	Samples    int             `json:"samples"` // operator-level samples per resource sweep
	Iterations int             `json:"iterations"`
	Resources  []string        `json:"resources"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Runs       []TrainBenchRun `json:"runs"`
}

// RunTrainBench times the bootstrap training workload at 1 worker and
// at GOMAXPROCS (plus any extra counts given), returning the
// samples/sec baseline. The trained models are bit-identical across
// runs — only wall-clock differs.
func RunTrainBench(n, iters int, extraWorkers ...int) (*TrainBench, error) {
	qs := workload.GenTPCH(workload.Config{Seed: 1, N: n, SFs: []float64{1, 2, 4, 8}, Z: 2, Corr: 0.85})
	eng := engine.New(nil)
	for _, q := range qs {
		eng.Run(q.Plan)
	}
	plans := Plans(qs)
	resources := []plan.ResourceKind{plan.CPUTime, plan.LogicalIO}

	res := &TrainBench{
		Queries:    len(qs),
		Iterations: iters,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Resources:  []string{plan.CPUTime.String(), plan.LogicalIO.String()},
	}
	for _, p := range plans {
		res.Samples += len(p.Nodes()) * len(resources)
	}

	counts := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		counts = append(counts, g)
	}
	counts = append(counts, extraWorkers...)
	seen := map[int]bool{}
	for _, workers := range counts {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true
		cfg := core.DefaultConfig()
		cfg.Mart.Iterations = iters
		cfg.Workers = workers
		start := time.Now()
		if _, err := core.TrainSet(plans, resources, core.NewScaleTable(), cfg); err != nil {
			return nil, err
		}
		sec := time.Since(start).Seconds()
		res.Runs = append(res.Runs, TrainBenchRun{
			Workers:       workers,
			Seconds:       sec,
			SamplesPerSec: float64(res.Samples) / sec,
		})
	}
	base := res.Runs[0].SamplesPerSec
	for i := range res.Runs {
		res.Runs[i].SpeedupVsSequential = res.Runs[i].SamplesPerSec / base
	}
	return res, nil
}
