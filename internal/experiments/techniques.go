// Package experiments implements the paper's evaluation (§7): it
// generates and executes the workloads, trains every technique, and
// regenerates each table and figure of the paper — same rows, same
// error metrics, over the simulated substrate.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/kcca"
	"repro/internal/linreg"
	"repro/internal/mart"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/regtree"
	"repro/internal/svm"
)

// Technique names, matching the paper's table rows.
const (
	TechOPT     = "OPT"
	TechAkdere  = "[8]"
	TechLinear  = "LINEAR"
	TechMART    = "MART"
	TechSVM     = "SVM"
	TechRegTree = "REGTREE"
	TechScaling = "SCALING"
	TechKCCA    = "KCCA"
)

// PlanEstimator predicts a plan's resource usage.
type PlanEstimator interface {
	PredictPlan(p *plan.Plan) float64
}

// predictor is a per-operator point regressor.
type predictor interface {
	Predict(x []float64) float64
}

// perOpEstimator wraps any per-operator regressor family into a plan
// estimator: one model per operator kind over the Table 1+2 features,
// plan estimate = sum of operator estimates.
type perOpEstimator struct {
	resource plan.ResourceKind
	mode     features.Mode
	models   map[plan.OpKind]predictor
	inputs   map[plan.OpKind][]features.ID
	fallback float64
}

// project maps a feature vector onto the operator's applicable columns.
func project(v *features.Vector, ids []features.ID) []float64 {
	x := make([]float64, len(ids))
	for i, id := range ids {
		x[i] = v.Get(id)
	}
	return x
}

func trainPerOp(plans []*plan.Plan, r plan.ResourceKind, mode features.Mode,
	train func(x [][]float64, y []float64) (predictor, error)) (*perOpEstimator, error) {

	e := &perOpEstimator{
		resource: r, mode: mode,
		models: map[plan.OpKind]predictor{},
		inputs: map[plan.OpKind][]features.ID{},
	}
	byOp := core.CollectSamples(plans, r, mode)
	var sum float64
	var n int
	for op, samples := range byOp {
		ids := features.ForOperator(op)
		xs := make([][]float64, len(samples))
		ys := make([]float64, len(samples))
		for i := range samples {
			xs[i] = project(&samples[i].X, ids)
			ys[i] = samples[i].Y
			sum += ys[i]
			n++
		}
		m, err := train(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", op, err)
		}
		e.models[op] = m
		e.inputs[op] = ids
	}
	if n > 0 {
		e.fallback = sum / float64(n)
	}
	return e, nil
}

// PredictPlan implements PlanEstimator.
func (e *perOpEstimator) PredictPlan(p *plan.Plan) float64 {
	vecs := features.ExtractPlan(p, e.mode)
	var total float64
	for i, nd := range p.Nodes() {
		m, ok := e.models[nd.Kind]
		if !ok {
			total += e.fallback
			continue
		}
		pr := m.Predict(project(&vecs[i], e.inputs[nd.Kind]))
		if pr > 0 {
			total += pr
		}
	}
	return total
}

// akdereEstimator is the operator-level model of Akdere et al. [8]:
// per-operator linear regression (with greedy feature selection) that
// propagates *cumulative* resource estimates bottom-up — each operator's
// model sees, in addition to the Table 1+2 features, the estimated
// cumulative resource of its children.
type akdereEstimator struct {
	resource plan.ResourceKind
	mode     features.Mode
	models   map[plan.OpKind]*linreg.Model
	inputs   map[plan.OpKind][]features.ID
	fallback float64
}

func trainAkdere(plans []*plan.Plan, r plan.ResourceKind, mode features.Mode) (*akdereEstimator, error) {
	e := &akdereEstimator{
		resource: r, mode: mode,
		models: map[plan.OpKind]*linreg.Model{},
		inputs: map[plan.OpKind][]features.ID{},
	}
	// Gather training rows: features + true cumulative child resources
	// (training uses measured values; prediction substitutes estimates,
	// exactly the propagation scheme of [8]).
	type row struct {
		x []float64
		y float64
	}
	byOp := map[plan.OpKind][]row{}
	var sum float64
	var n int
	for _, p := range plans {
		vecs := features.ExtractPlan(p, mode)
		nodes := p.Nodes()
		cum := map[*plan.Node]float64{}
		// Compute cumulative actuals bottom-up (reverse preorder works:
		// children appear after parents in preorder, so iterate last to
		// first).
		for i := len(nodes) - 1; i >= 0; i-- {
			nd := nodes[i]
			c := nd.Actual.Get(r)
			for _, ch := range nd.Children {
				c += cum[ch]
			}
			cum[nd] = c
		}
		for i, nd := range nodes {
			ids := features.ForOperator(nd.Kind)
			x := project(&vecs[i], ids)
			var childCum float64
			for _, ch := range nd.Children {
				childCum += cum[ch]
			}
			x = append(x, childCum)
			byOp[nd.Kind] = append(byOp[nd.Kind], row{x: x, y: cum[nd]})
			sum += nd.Actual.Get(r)
			n++
		}
	}
	for op, rows := range byOp {
		xs := make([][]float64, len(rows))
		ys := make([]float64, len(rows))
		for i, rw := range rows {
			xs[i], ys[i] = rw.x, rw.y
		}
		m, err := linreg.Train(xs, ys, linreg.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: akdere %s: %w", op, err)
		}
		e.models[op] = m
		e.inputs[op] = features.ForOperator(op)
	}
	if n > 0 {
		e.fallback = sum / float64(n)
	}
	return e, nil
}

// PredictPlan implements PlanEstimator: bottom-up propagation of
// cumulative estimates; the root's cumulative estimate is the query
// estimate.
func (e *akdereEstimator) PredictPlan(p *plan.Plan) float64 {
	vecs := features.ExtractPlan(p, e.mode)
	nodes := p.Nodes()
	vecOf := map[*plan.Node]*features.Vector{}
	for i, nd := range nodes {
		vecOf[nd] = &vecs[i]
	}
	var rec func(nd *plan.Node) float64
	rec = func(nd *plan.Node) float64 {
		var childCum float64
		for _, ch := range nd.Children {
			childCum += rec(ch)
		}
		m, ok := e.models[nd.Kind]
		if !ok {
			return childCum + e.fallback
		}
		x := append(project(vecOf[nd], e.inputs[nd.Kind]), childCum)
		est := m.Predict(x)
		if est < childCum {
			// Cumulative resource can never shrink below the children's.
			est = childCum
		}
		return est
	}
	return rec(p.Root)
}

// optEstimator wraps the fitted optimizer-cost baseline.
type optEstimator struct{ adj *optimizer.Adjusted }

// PredictPlan implements PlanEstimator.
func (e *optEstimator) PredictPlan(p *plan.Plan) float64 { return e.adj.PredictPlan(p) }

// kccaEstimator wraps the template-level nearest-neighbour baseline.
type kccaEstimator struct{ m *kcca.Model }

// PredictPlan implements PlanEstimator.
func (e *kccaEstimator) PredictPlan(p *plan.Plan) float64 {
	return e.m.Predict(kcca.PlanFeatures(p))
}

// TechniqueSet trains the requested techniques on the training plans.
type TechniqueSet struct {
	Resource plan.ResourceKind
	Mode     features.Mode
	Models   map[string]PlanEstimator
}

// TrainConfig bundles the per-technique knobs.
type TrainConfig struct {
	Resource plan.ResourceKind
	Mode     features.Mode
	// MartIterations configures both MART and SCALING (0 = default 1000).
	MartIterations int
	// SVMKernel selects the kernel, per the paper's per-section best
	// (PolyKernel for CPU, RBFKernel for I/O). nil = poly.
	SVMKernel svm.Kernel
	// ScaleTable supplies §6.2 selections for SCALING (nil = linear).
	ScaleTable *core.ScaleTable
	// Techniques lists which rows to train (nil = all applicable).
	Techniques []string
}

func (c *TrainConfig) martConfig() mart.Config {
	mc := mart.DefaultConfig()
	if c.MartIterations > 0 {
		mc.Iterations = c.MartIterations
	}
	return mc
}

// TrainTechniques trains every requested technique on executed plans.
func TrainTechniques(train []*plan.Plan, cfg TrainConfig) (*TechniqueSet, error) {
	ts := &TechniqueSet{Resource: cfg.Resource, Mode: cfg.Mode, Models: map[string]PlanEstimator{}}
	want := map[string]bool{}
	if len(cfg.Techniques) == 0 {
		for _, t := range []string{TechOPT, TechAkdere, TechLinear, TechMART, TechSVM, TechRegTree, TechScaling} {
			want[t] = true
		}
	} else {
		for _, t := range cfg.Techniques {
			want[t] = true
		}
	}
	if want[TechOPT] {
		// OPT only makes sense with optimizer estimates; it is trained
		// regardless and reported in the estimated-features sections.
		adj := optimizer.FitAdjusted(optimizer.DefaultModel(), train, cfg.Resource)
		ts.Models[TechOPT] = &optEstimator{adj: adj}
	}
	if want[TechAkdere] {
		m, err := trainAkdere(train, cfg.Resource, cfg.Mode)
		if err != nil {
			return nil, err
		}
		ts.Models[TechAkdere] = m
	}
	if want[TechLinear] {
		m, err := trainPerOp(train, cfg.Resource, cfg.Mode,
			func(x [][]float64, y []float64) (predictor, error) {
				return linreg.Train(x, y, linreg.DefaultConfig())
			})
		if err != nil {
			return nil, err
		}
		ts.Models[TechLinear] = m
	}
	if want[TechMART] {
		ccfg := core.DefaultConfig()
		ccfg.Mart = cfg.martConfig()
		ccfg.Mode = cfg.Mode
		ccfg.DisableScaling = true
		m, err := core.Train(train, cfg.Resource, nil, ccfg)
		if err != nil {
			return nil, err
		}
		ts.Models[TechMART] = m
	}
	if want[TechSVM] {
		kernel := cfg.SVMKernel
		if kernel == nil {
			kernel = svm.PolyKernel{Degree: 1}
		}
		m, err := trainPerOp(train, cfg.Resource, cfg.Mode,
			func(x [][]float64, y []float64) (predictor, error) {
				sc := svm.DefaultConfig()
				sc.Kernel = kernel
				return svm.Train(x, y, sc)
			})
		if err != nil {
			return nil, err
		}
		ts.Models[TechSVM] = m
	}
	if want[TechRegTree] {
		m, err := trainPerOp(train, cfg.Resource, cfg.Mode,
			func(x [][]float64, y []float64) (predictor, error) {
				m, err := regtree.Train(x, y, regtree.DefaultConfig())
				if err != nil {
					return nil, err
				}
				// Serve predictions from the compiled flat-segment
				// layout (bit-identical to the staged walk).
				return regtree.Compile(m), nil
			})
		if err != nil {
			return nil, err
		}
		ts.Models[TechRegTree] = m
	}
	if want[TechScaling] {
		ccfg := core.DefaultConfig()
		ccfg.Mart = cfg.martConfig()
		ccfg.Mode = cfg.Mode
		m, err := core.Train(train, cfg.Resource, cfg.ScaleTable, ccfg)
		if err != nil {
			return nil, err
		}
		ts.Models[TechScaling] = m
	}
	if want[TechKCCA] {
		var xs [][]float64
		var ys []float64
		for _, p := range train {
			xs = append(xs, kcca.PlanFeatures(p))
			ys = append(ys, p.TotalActual().Get(cfg.Resource))
		}
		m, err := kcca.Train(xs, ys, 3)
		if err != nil {
			return nil, err
		}
		ts.Models[TechKCCA] = &kccaEstimator{m: m}
	}
	return ts, nil
}
