package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/stream"
)

// The streaming-transport baseline behind cmd/resbench -exp
// streambench: at each concurrency level it drives the same warm
// service twice — once over persistent streaming connections (whose
// in-flight requests the server coalesces across connections into
// micro-batched dispatches), once over keep-alive HTTP POST /estimate
// with one sequential client per connection — and records estimates/s
// for both into BENCH_stream.json. The streaming side keeps a small
// pipeline of requests in flight per connection (depth); the HTTP side
// is sequential per connection because HTTP/1.1 offers no safe
// pipelining — that asymmetry is the transport's feature, not a bench
// artifact. The speedup column is the transport's whole argument: at
// high concurrency the coalescer turns N parked requests into N/fill
// pool dispatches and the writers coalesce frames into shared
// syscalls, so throughput holds where per-request HTTP dispatch
// saturates.

// StreamBenchLevel is one concurrency level's comparison.
type StreamBenchLevel struct {
	Conns int `json:"conns"`
	// StreamPerSec and HTTPPerSec are end-to-end estimates/s at this
	// concurrency over each transport (same plans, same warm cache).
	StreamPerSec float64 `json:"stream_per_sec"`
	HTTPPerSec   float64 `json:"http_per_sec"`
	// Speedup is StreamPerSec / HTTPPerSec.
	Speedup float64 `json:"speedup"`
	// StreamP50Micros/StreamP99Micros summarize per-request streaming
	// latency; under coalescing this includes the micro-batcher wait.
	StreamP50Micros float64 `json:"stream_p50_us"`
	StreamP99Micros float64 `json:"stream_p99_us"`
	// Dispatches is how many coalesced micro-batches the streaming run
	// cost; AvgBatchFill = requests/Dispatches is the realized
	// amortization.
	Dispatches   uint64  `json:"dispatches"`
	AvgBatchFill float64 `json:"avg_batch_fill"`
}

// StreamBench is the serializable streaming-transport baseline.
type StreamBench struct {
	Queries         int    `json:"queries"`
	Operators       int    `json:"operators"`
	Iterations      int    `json:"iterations"`
	Workers         int    `json:"workers"`
	GoMaxProcs      int    `json:"gomaxprocs"`
	RequestsPerConn int    `json:"requests_per_conn"`
	PipelineDepth   int    `json:"pipeline_depth"`
	Resource        string `json:"resource"`

	Levels []StreamBenchLevel `json:"levels"`
}

// RunStreamBench measures streaming vs HTTP estimate throughput at the
// given connection counts. n is the workload size (queries), iters the
// MART iterations of the quick benchmark model, reqsPerConn how many
// estimates each connection issues, depth how many of those a
// streaming connection keeps in flight at once (HTTP connections are
// always sequential).
func RunStreamBench(n, iters, reqsPerConn, depth int, conns []int) (*StreamBench, error) {
	if reqsPerConn <= 0 {
		reqsPerConn = 50
	}
	if depth <= 0 {
		depth = 5
	}
	for depth > 1 && reqsPerConn%depth != 0 {
		depth-- // keep per-goroutine request counts exact
	}
	est, plans, err := serveBenchWorkload(n, iters)
	if err != nil {
		return nil, err
	}
	res := &StreamBench{
		Queries:         len(plans),
		Iterations:      iters,
		Workers:         2,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		RequestsPerConn: reqsPerConn,
		PipelineDepth:   depth,
		Resource:        plan.CPUTime.String(),
	}
	for _, p := range plans {
		res.Operators += len(p.Nodes())
	}

	// One warm service behind both transports: the comparison is about
	// transport + dispatch overhead, not model evaluation.
	svc := newBenchService(est, 1<<16, false)
	defer svc.Close()
	if _, err := drive(svc, plans, nil); err != nil {
		return nil, err
	}

	ss, err := stream.Start("127.0.0.1:0", stream.Options{Service: svc})
	if err != nil {
		return nil, err
	}
	defer ss.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: svc.Handler()}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	httpURL := "http://" + ln.Addr().String() + "/estimate"

	// Pre-encode every request body once — both transports replay the
	// identical bytes, and neither pays a per-call marshal.
	streamBodies := make([][]byte, len(plans))
	httpBodies := make([][]byte, len(plans))
	for i, p := range plans {
		enc, err := plan.EncodeJSON(p)
		if err != nil {
			return nil, err
		}
		httpBodies[i], err = json.Marshal(map[string]any{
			"schema": "tpch", "resource": "cpu", "plan": json.RawMessage(enc),
		})
		if err != nil {
			return nil, err
		}
		streamBodies[i], err = json.Marshal(&stream.Request{Schema: "tpch", Resource: "cpu", Plan: enc})
		if err != nil {
			return nil, err
		}
	}

	for _, c := range conns {
		lvl := StreamBenchLevel{Conns: c}

		// Streaming: c persistent connections, each keeping up to depth
		// estimates in flight — so at any instant up to c×depth requests
		// sit across the coalescer, which is how the transport is meant
		// to be driven.
		before := ss.Stats()
		lat := make([][]time.Duration, c*depth)
		clients := make([]*stream.Client, c)
		for i := range clients {
			if clients[i], err = stream.Dial(ss.Addr()); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, c*depth)
		for i := 0; i < c; i++ {
			for d := 0; d < depth; d++ {
				wg.Add(1)
				go func(i, slot int) {
					defer wg.Done()
					cl := clients[i]
					for r := 0; r < reqsPerConn/depth; r++ {
						t0 := time.Now()
						if _, err := cl.EstimateBytes(context.Background(), streamBodies[(slot+r)%len(streamBodies)]); err != nil {
							errs <- err
							return
						}
						lat[slot] = append(lat[slot], time.Since(t0))
					}
				}(i, i*depth+d)
			}
		}
		wg.Wait()
		streamDur := time.Since(start)
		for _, cl := range clients {
			cl.Close()
		}
		select {
		case err := <-errs:
			return nil, fmt.Errorf("streambench: %d conns: %w", c, err)
		default:
		}
		after := ss.Stats()
		total := c * reqsPerConn
		lvl.StreamPerSec = float64(total) / streamDur.Seconds()
		lvl.Dispatches = after.Dispatches - before.Dispatches
		if lvl.Dispatches > 0 {
			lvl.AvgBatchFill = float64(after.Requests-before.Requests) / float64(lvl.Dispatches)
		}
		var flat []time.Duration
		for _, l := range lat {
			flat = append(flat, l...)
		}
		mode := summarizeMode(flat)
		lvl.StreamP50Micros, lvl.StreamP99Micros = mode.P50Micros, mode.P99Micros

		// HTTP: the same concurrency and request count, one sequential
		// keep-alive client per connection.
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        c + 8,
			MaxIdleConnsPerHost: c + 8,
		}}
		start = time.Now()
		for i := 0; i < c; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < reqsPerConn; r++ {
					resp, err := client.Post(httpURL, "application/json",
						bytes.NewReader(httpBodies[(i+r)%len(httpBodies)]))
					if err != nil {
						errs <- err
						return
					}
					// Drain, don't decode: the stream side hands back raw
					// bytes too, so the comparison is transport-only.
					_, derr := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if derr != nil {
						errs <- derr
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("estimate: %s", resp.Status)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		httpDur := time.Since(start)
		client.CloseIdleConnections()
		select {
		case err := <-errs:
			return nil, fmt.Errorf("streambench: %d conns (http): %w", c, err)
		default:
		}
		lvl.HTTPPerSec = float64(total) / httpDur.Seconds()
		lvl.Speedup = lvl.StreamPerSec / lvl.HTTPPerSec
		res.Levels = append(res.Levels, lvl)
	}
	return res, nil
}
