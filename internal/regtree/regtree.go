// Package regtree implements the REGTREE baseline of §7: a boosting
// approach in the spirit of transform regression [18, 22], where each
// stage fits a piecewise-linear model in a single feature to the
// residual error of the previous stages. Unlike plain regression trees,
// the edge segments extend linearly, so the model extrapolates (with a
// fixed linear form) beyond the training range.
package regtree

import (
	"errors"
	"math"
	"sort"

	"repro/internal/par"
	"repro/internal/stats"
)

// Config controls training.
type Config struct {
	Stages       int     // boosting stages
	Segments     int     // piecewise segments per stage
	LearningRate float64 // shrinkage
	MinSegment   int     // minimum rows per segment
	// Workers bounds training parallelism: the one-time per-feature
	// sort-order construction and each stage's independent per-feature
	// candidate fits fan out across this many workers (<= 0 selects
	// GOMAXPROCS). The trained model is bit-identical at any worker
	// count — candidates are merged in fixed feature order.
	Workers int
}

// DefaultConfig returns the standard setup.
func DefaultConfig() Config {
	return Config{Stages: 60, Segments: 6, LearningRate: 0.5, MinSegment: 8}
}

// segment is one linear piece: y = A + B·x for x in (Lo, Hi].
type segment struct {
	Lo, Hi float64 // Lo exclusive, Hi inclusive; edges are ±Inf
	A, B   float64
}

// stage is a piecewise-linear transform of one feature.
type stage struct {
	Feature  int
	Segments []segment
}

func (s *stage) eval(x []float64) float64 {
	v := x[s.Feature]
	for i := range s.Segments {
		if v <= s.Segments[i].Hi {
			return s.Segments[i].A + s.Segments[i].B*v
		}
	}
	last := s.Segments[len(s.Segments)-1]
	return last.A + last.B*v
}

// Model is a boosted sequence of single-feature piecewise-linear stages.
type Model struct {
	Base   float64
	Rate   float64
	Stages []stage
}

// Train fits the model. Deterministic.
func Train(x [][]float64, y []float64, cfg Config) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, errors.New("regtree: empty or mismatched training data")
	}
	if cfg.Stages <= 0 || cfg.Segments < 1 {
		return nil, errors.New("regtree: invalid config")
	}
	k := len(x[0])
	m := &Model{Base: stats.Mean(y), Rate: cfg.LearningRate}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.Base
	}
	resid := make([]float64, n)

	pool := par.NewPool(cfg.Workers)
	defer pool.Close()
	// Parallel regions only pay off past this many row-visits; below it
	// everything runs inline. Results are identical either way.
	parallel := func(work int) bool { return pool.Workers() > 1 && k > 1 && work >= 2048 }

	// Per-feature sorted row orders, computed once and reused by every
	// stage (fitStage segments the pre-sorted rows; re-sorting per stage
	// would dominate training). Columns are independent, so the sorts
	// fan out one feature per worker.
	order := make([][]int, k) // row indexes sorted by feature value
	buildOrder := func(f int) {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return x[idx[a]][f] < x[idx[b]][f] })
		order[f] = idx
	}
	if parallel(n * k) {
		pool.For(k, func(_, f int) { buildOrder(f) })
	} else {
		for f := 0; f < k; f++ {
			buildOrder(f)
		}
	}

	// Each stage fits one candidate per feature; the fits are
	// independent, so they fan out across the pool into per-feature
	// result slots, merged below in ascending feature order — the exact
	// tie-breaking of a sequential feature loop.
	type fitResult struct {
		st  stage
		sse float64
		ok  bool
	}
	results := make([]fitResult, k)
	for it := 0; it < cfg.Stages; it++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		fit := func(f int) {
			st, sse, ok := fitStage(x, resid, order[f], f, cfg)
			results[f] = fitResult{st: st, sse: sse, ok: ok}
		}
		if parallel(n * k) {
			pool.For(k, func(_, f int) { fit(f) })
		} else {
			for f := 0; f < k; f++ {
				fit(f)
			}
		}
		best := stage{Feature: -1}
		bestSSE := math.Inf(1)
		for f := 0; f < k; f++ {
			if results[f].ok && results[f].sse < bestSSE {
				bestSSE = results[f].sse
				best = results[f].st
			}
		}
		if best.Feature < 0 {
			break
		}
		m.Stages = append(m.Stages, best)
		var improved float64
		for i := range pred {
			d := cfg.LearningRate * best.eval(x[i])
			pred[i] += d
			improved += math.Abs(d)
		}
		if improved/float64(n) < 1e-10 {
			break
		}
	}
	return m, nil
}

// fitStage fits a piecewise-linear transform of feature f to the
// residuals, splitting the sorted rows into equal-count segments.
func fitStage(x [][]float64, resid []float64, idx []int, f int, cfg Config) (stage, float64, bool) {
	n := len(idx)
	nSeg := cfg.Segments
	if n/nSeg < cfg.MinSegment {
		nSeg = n / cfg.MinSegment
		if nSeg < 1 {
			return stage{}, 0, false
		}
	}
	st := stage{Feature: f}
	var sse float64
	for s := 0; s < nSeg; s++ {
		lo := s * n / nSeg
		hi := (s + 1) * n / nSeg
		if hi <= lo {
			continue
		}
		rows := idx[lo:hi]
		a, bcoef := fitLine(x, resid, rows, f)
		seg := segment{A: a, B: bcoef, Lo: math.Inf(-1), Hi: math.Inf(1)}
		if s > 0 {
			seg.Lo = x[idx[lo-1]][f]
		}
		if s < nSeg-1 {
			seg.Hi = x[idx[hi-1]][f]
		}
		// Segments bordering equal feature values can degenerate
		// (Lo == Hi); they simply never match and the next segment
		// covers the value.
		st.Segments = append(st.Segments, seg)
		for _, r := range rows {
			d := resid[r] - (a + bcoef*x[r][f])
			sse += d * d
		}
	}
	if len(st.Segments) == 0 {
		return stage{}, 0, false
	}
	return st, sse, true
}

// fitLine fits resid ≈ a + b·x[f] over the given rows by least squares.
func fitLine(x [][]float64, resid []float64, rows []int, f int) (a, b float64) {
	n := float64(len(rows))
	var sx, sy, sxx, sxy float64
	for _, r := range rows {
		v := x[r][f]
		sx += v
		sy += resid[r]
		sxx += v * v
		sxy += v * resid[r]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		return sy / n, 0
	}
	return a, b
}

// Predict evaluates the model on a feature vector.
func (m *Model) Predict(x []float64) float64 {
	y := m.Base
	for i := range m.Stages {
		y += m.Rate * m.Stages[i].eval(x)
	}
	return y
}
