package regtree

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestSlabRoundTripBitIdentical proves the slab codec is lossless: a
// Compiled rebuilt from its slab bytes — via both the zero-copy alias
// and the forced copying decode — predicts bit-identically to the
// original, single-row and batch.
func TestSlabRoundTripBitIdentical(t *testing.T) {
	xs, ys := gen(900, 7, func(x []float64) float64 { return 3*x[0] + x[1]*x[1] })
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)
	blob := c.AppendSlab(nil)
	if len(blob) != c.SlabSize() {
		t.Fatalf("encoded %d bytes, SlabSize says %d", len(blob), c.SlabSize())
	}

	rng := xrand.New(55)
	probes := append([][]float64{}, xs...)
	for i := 0; i < 300; i++ {
		probes = append(probes, []float64{rng.Range(-200, 200), rng.Range(-20, 20)})
	}
	probes = append(probes, []float64{0, 0}, []float64{1e18, -1e18}, []float64{math.NaN(), 1})

	for _, forceCopy := range []bool{false, true} {
		slabForceCopy = forceCopy
		dec, err := CompiledFromSlab(blob)
		slabForceCopy = false
		if err != nil {
			t.Fatalf("forceCopy=%v: %v", forceCopy, err)
		}
		if dec.NumStages() != c.NumStages() {
			t.Fatalf("forceCopy=%v: %d stages, want %d", forceCopy, dec.NumStages(), c.NumStages())
		}
		batch := make([]float64, len(probes))
		dec.PredictBatch(probes, batch)
		for i, x := range probes {
			want := c.Predict(x)
			if got := dec.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("forceCopy=%v probe %d: %v != %v", forceCopy, i, got, want)
			}
			if math.Float64bits(batch[i]) != math.Float64bits(want) {
				t.Fatalf("forceCopy=%v probe %d: batch %v != %v", forceCopy, i, batch[i], want)
			}
		}
		margins, y := dec.PredictMargins(probes[0], nil)
		if len(margins) != dec.NumStages() || math.Float64bits(y) != math.Float64bits(c.Predict(probes[0])) {
			t.Fatalf("forceCopy=%v: margins surface diverged", forceCopy)
		}
	}

	// Re-encode must reproduce the bytes (stability under republish).
	dec, err := CompiledFromSlab(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec.AppendSlab(nil)) != string(blob) {
		t.Fatal("re-encoded slab differs from original bytes")
	}
}

// TestSlabRejectsCorruption checks the validation surface: mutations
// that break structural invariants fail decode with an error, never a
// panic or an out-of-range segment scan.
func TestSlabRejectsCorruption(t *testing.T) {
	xs, ys := gen(400, 11, func(x []float64) float64 { return x[0] + 2*x[1] })
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)
	blob := c.AppendSlab(nil)

	mutate := func(name string, fn func(b []byte) []byte) {
		t.Helper()
		b := fn(append([]byte(nil), blob...))
		if _, err := CompiledFromSlab(b); err == nil {
			t.Fatalf("%s: decode accepted corrupt slab", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-8] })
	mutate("extended", func(b []byte) []byte { return append(b, 0) })
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("stage count lies", func(b []byte) []byte { b[4]++; return b })
	mutate("seg count lies", func(b []byte) []byte { b[8]++; return b })
	mutate("stage range out of bounds", func(b []byte) []byte {
		// First stage's n field → huge.
		b[slabHeaderSize+8] = 0xFF
		b[slabHeaderSize+9] = 0xFF
		return b
	})
	mutate("empty stage", func(b []byte) []byte {
		b[slabHeaderSize+8] = 0
		b[slabHeaderSize+9] = 0
		b[slabHeaderSize+10] = 0
		b[slabHeaderSize+11] = 0
		return b
	})
	mutate("negative feature", func(b []byte) []byte {
		b[slabHeaderSize+3] = 0x80
		return b
	})
}
