package regtree

import (
	"reflect"
	"runtime"
	"testing"
)

// TestTrainBitIdenticalAcrossWorkers: the parallel per-feature stage
// fits must produce exactly the model the sequential loop does — same
// stage features, same segment boundaries, same coefficients — at every
// worker count.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	// Enough rows and features to cross the parallel threshold; a target
	// that mixes both features so stage selection has real choices, with
	// near-ties the fixed-order merge must resolve identically.
	xs, ys := gen(2500, 9, func(x []float64) float64 {
		return 4*x[0] + x[1]*x[1] + x[0]*x[1]/20
	})

	train := func(workers int) *Model {
		cfg := DefaultConfig()
		cfg.Workers = workers
		m, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return m
	}

	want := train(1)
	if len(want.Stages) < 2 {
		t.Fatalf("only %d stages; determinism test needs real stage competition", len(want.Stages))
	}
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0), 0} {
		got := train(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: model differs from sequential", w)
		}
	}
}
