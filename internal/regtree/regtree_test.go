package regtree

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func gen(n int, seed uint64, fn func([]float64) float64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := []float64{rng.Range(0, 100), rng.Range(0, 10)}
		xs = append(xs, x)
		ys = append(ys, fn(x))
	}
	return xs, ys
}

func meanRelErr(m *Model, xs [][]float64, ys []float64) float64 {
	var s float64
	for i := range xs {
		s += math.Abs(m.Predict(xs[i])-ys[i]) / math.Max(math.Abs(ys[i]), 1)
	}
	return s / float64(len(xs))
}

func TestFitsPiecewiseLinear(t *testing.T) {
	fn := func(x []float64) float64 {
		if x[0] < 50 {
			return 2 * x[0]
		}
		return 100 + 8*(x[0]-50)
	}
	xs, ys := gen(1000, 1, fn)
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e := meanRelErr(m, xs, ys); e > 0.1 {
		t.Fatalf("piecewise-linear training error %v", e)
	}
}

func TestFitsSmoothNonlinear(t *testing.T) {
	fn := func(x []float64) float64 { return x[0]*x[0]/10 + 3*x[1] }
	xs, ys := gen(1500, 2, fn)
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e := meanRelErr(m, xs, ys); e > 0.12 {
		t.Fatalf("quadratic training error %v", e)
	}
}

func TestExtrapolatesLinearly(t *testing.T) {
	// Transform regression's edge segments extend linearly — better than
	// trees, but with a fixed (possibly wrong) slope.
	xs, ys := gen(800, 3, func(x []float64) float64 { return 5 * x[0] })
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{300, 5}) // 3x the training max
	want := 1500.0
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("extrapolation = %v, want ~%v", got, want)
	}
}

func TestDeterministic(t *testing.T) {
	xs, ys := gen(300, 4, func(x []float64) float64 { return x[0] + x[1] })
	m1, _ := Train(xs, ys, DefaultConfig())
	m2, _ := Train(xs, ys, DefaultConfig())
	p := []float64{42, 3}
	if m1.Predict(p) != m2.Predict(p) {
		t.Fatal("training not deterministic")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty data accepted")
	}
	bad := DefaultConfig()
	bad.Stages = 0
	if _, err := Train([][]float64{{1}}, []float64{1}, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestConstantTarget(t *testing.T) {
	xs, _ := gen(100, 5, func([]float64) float64 { return 0 })
	ys := make([]float64, 100)
	for i := range ys {
		ys[i] = 9
	}
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{50, 5}); math.Abs(got-9) > 0.01 {
		t.Fatalf("constant prediction = %v", got)
	}
	if len(m.Stages) > 2 {
		t.Fatalf("constant target used %d stages", len(m.Stages))
	}
}

func TestTinyDataset(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{2, 4, 6, 8}
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{2.5}); math.Abs(got-5) > 1.5 {
		t.Fatalf("tiny-data prediction = %v, want ~5", got)
	}
}
