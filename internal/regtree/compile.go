package regtree

// Compiled is the batch-serving layout of a trained model: every
// stage's piecewise-linear segments flattened into one contiguous slab,
// visited stage-outer / sample-inner so a stage's few segments stay in
// cache while an entire batch evaluates it. Predictions are
// bit-identical to Model.Predict: the segment scan and the per-sample
// accumulation order (base, then each stage's shrunken contribution, in
// stage order) are exactly the same float operations.
type Compiled struct {
	base   float64
	rate   float64
	stages []cstage
	segs   []cseg // all stages' segments, stage by stage
}

// cstage is one flattened stage: the transformed feature plus its
// segment range [off, off+n) within Compiled.segs.
type cstage struct {
	feature int32
	off, n  int32
}

// cseg is one linear piece: y = a + b·x for x ≤ hi (edges are ±Inf,
// matching the source segment bounds).
type cseg struct {
	hi, a, b float64
}

// Compile flattens the model into the contiguous serving layout.
func Compile(m *Model) *Compiled {
	c := &Compiled{base: m.Base, rate: m.Rate, stages: make([]cstage, 0, len(m.Stages))}
	total := 0
	for i := range m.Stages {
		total += len(m.Stages[i].Segments)
	}
	c.segs = make([]cseg, 0, total)
	for i := range m.Stages {
		st := &m.Stages[i]
		c.stages = append(c.stages, cstage{
			feature: int32(st.Feature),
			off:     int32(len(c.segs)),
			n:       int32(len(st.Segments)),
		})
		for _, s := range st.Segments {
			c.segs = append(c.segs, cseg{hi: s.Hi, a: s.A, b: s.B})
		}
	}
	return c
}

// NumStages returns the number of compiled boosting stages.
func (c *Compiled) NumStages() int { return len(c.stages) }

// evalStage mirrors stage.eval on the flattened segments.
func (c *Compiled) evalStage(st *cstage, v float64) float64 {
	segs := c.segs[st.off : st.off+st.n]
	for i := range segs {
		if v <= segs[i].hi {
			return segs[i].a + segs[i].b*v
		}
	}
	last := segs[len(segs)-1]
	return last.a + last.b*v
}

// Predict evaluates one feature vector, bit-identical to Model.Predict
// on the source model.
func (c *Compiled) Predict(x []float64) float64 {
	y := c.base
	for i := range c.stages {
		st := &c.stages[i]
		y += c.rate * c.evalStage(st, x[st.feature])
	}
	return y
}

// PredictMargins evaluates one feature vector like Predict while
// recording the cumulative prediction after each boosting stage:
// margins[i] is the output of the first i+1 stages (base included), so
// the last margin is the final prediction, bit-identical to Predict
// (the same float operations in the same order). Margins are appended
// to dst; the final prediction is also returned directly so a model
// with zero stages still reports its base.
func (c *Compiled) PredictMargins(x []float64, dst []float64) ([]float64, float64) {
	y := c.base
	for i := range c.stages {
		st := &c.stages[i]
		y += c.rate * c.evalStage(st, x[st.feature])
		dst = append(dst, y)
	}
	return dst, y
}

// PredictBatch evaluates every row of xs into out (parallel slices,
// len(out) must equal len(xs)), stage-outer for cache locality and
// bit-identical to calling Predict row by row.
func (c *Compiled) PredictBatch(xs [][]float64, out []float64) {
	for i := range out {
		out[i] = c.base
	}
	for i := range c.stages {
		st := &c.stages[i]
		for j, x := range xs {
			out[j] += c.rate * c.evalStage(st, x[st.feature])
		}
	}
}
