package regtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// Slab encoding: Compiled serialized as a relocatable flat byte range
// whose stage/segment payload is exactly the in-memory layout on a
// little-endian host, so a loader can mmap the file and alias the
// arrays over the mapped pages with no heap decode (the same discipline
// as the mart slab; see internal/mart/slab.go).
//
// Layout (little-endian, offsets relative to slab start, which callers
// keep 8-byte aligned relative to the mapping base):
//
//	off  0  u32  magic "RTS1"
//	off  4  u32  nStages
//	off  8  u64  nSegs
//	off 16  f64  base
//	off 24  f64  rate
//	off 32  12B × nStages  stages {i32 feature, i32 off, i32 n}
//	        pad to 8-byte boundary (zeros)
//	        24B × nSegs    segs {f64 hi, f64 a, f64 b}
const (
	slabMagic      = 0x31535452 // "RTS1"
	slabHeaderSize = 32

	maxSlabStages = 1 << 20
	maxSlabSegs   = 1 << 26
	maxSlabFeat   = 1 << 16
)

// ErrSlab wraps every slab decode failure.
var ErrSlab = errors.New("regtree: bad slab")

var (
	hostLittleEndian = func() bool {
		x := uint16(1)
		return *(*byte)(unsafe.Pointer(&x)) == 1
	}()

	// slabForceCopy forces the copying decode path (for tests).
	slabForceCopy = false
)

func slabPad(nStages int) int {
	return (8 - (slabHeaderSize+12*nStages)%8) % 8
}

// SlabSize returns the exact encoded size of the compiled model.
func (c *Compiled) SlabSize() int {
	return slabHeaderSize + 12*len(c.stages) + slabPad(len(c.stages)) + 24*len(c.segs)
}

// AppendSlab appends the slab encoding of c to dst and returns the
// extended slice; byte-deterministic on every host.
func (c *Compiled) AppendSlab(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, c.SlabSize())...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:], slabMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(c.stages)))
	binary.LittleEndian.PutUint64(b[8:], uint64(len(c.segs)))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(c.base))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(c.rate))
	p := slabHeaderSize
	for i := range c.stages {
		st := &c.stages[i]
		binary.LittleEndian.PutUint32(b[p:], uint32(st.feature))
		binary.LittleEndian.PutUint32(b[p+4:], uint32(st.off))
		binary.LittleEndian.PutUint32(b[p+8:], uint32(st.n))
		p += 12
	}
	p += slabPad(len(c.stages))
	for i := range c.segs {
		s := &c.segs[i]
		binary.LittleEndian.PutUint64(b[p:], math.Float64bits(s.hi))
		binary.LittleEndian.PutUint64(b[p+8:], math.Float64bits(s.a))
		binary.LittleEndian.PutUint64(b[p+16:], math.Float64bits(s.b))
		p += 24
	}
	return dst
}

// CompiledFromSlab reconstructs a Compiled view over slab bytes. On a
// little-endian host the stage and segment arrays alias b directly, so
// b must stay alive and unmodified for the lifetime of the returned
// model (an mmap'd read-only file); otherwise the arrays are decoded
// onto the heap. Structural invariants (segment ranges in bounds,
// every stage non-empty, feature indexes sane) are validated so the
// evaluation loops are safe on adversarial bytes.
func CompiledFromSlab(b []byte) (*Compiled, error) {
	if len(b) < slabHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrSlab, len(b), slabHeaderSize)
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != slabMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrSlab, m)
	}
	nStages := int(binary.LittleEndian.Uint32(b[4:]))
	nSegs64 := binary.LittleEndian.Uint64(b[8:])
	if nStages > maxSlabStages || nSegs64 > maxSlabSegs {
		return nil, fmt.Errorf("%w: %d stages / %d segs exceed caps", ErrSlab, nStages, nSegs64)
	}
	nSegs := int(nSegs64)
	want := slabHeaderSize + 12*nStages + slabPad(nStages) + 24*nSegs
	if len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrSlab, len(b), want)
	}
	c := &Compiled{
		base: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		rate: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
	}
	if math.IsNaN(c.base) || math.IsInf(c.base, 0) || math.IsNaN(c.rate) || math.IsInf(c.rate, 0) {
		return nil, fmt.Errorf("%w: non-finite base/rate", ErrSlab)
	}
	sb := b[slabHeaderSize : slabHeaderSize+12*nStages]
	gb := b[slabHeaderSize+12*nStages+slabPad(nStages):]
	if hostLittleEndian && !slabForceCopy && nStages > 0 && nSegs > 0 &&
		uintptr(unsafe.Pointer(unsafe.SliceData(sb)))%4 == 0 &&
		uintptr(unsafe.Pointer(unsafe.SliceData(gb)))%8 == 0 {
		c.stages = unsafe.Slice((*cstage)(unsafe.Pointer(unsafe.SliceData(sb))), nStages)
		c.segs = unsafe.Slice((*cseg)(unsafe.Pointer(unsafe.SliceData(gb))), nSegs)
	} else {
		c.stages = make([]cstage, nStages)
		c.segs = make([]cseg, nSegs)
		for i := range c.stages {
			c.stages[i] = cstage{
				feature: int32(binary.LittleEndian.Uint32(sb[12*i:])),
				off:     int32(binary.LittleEndian.Uint32(sb[12*i+4:])),
				n:       int32(binary.LittleEndian.Uint32(sb[12*i+8:])),
			}
		}
		for i := range c.segs {
			c.segs[i] = cseg{
				hi: math.Float64frombits(binary.LittleEndian.Uint64(gb[24*i:])),
				a:  math.Float64frombits(binary.LittleEndian.Uint64(gb[24*i+8:])),
				b:  math.Float64frombits(binary.LittleEndian.Uint64(gb[24*i+16:])),
			}
		}
	}
	for i := range c.stages {
		st := &c.stages[i]
		if st.feature < 0 || st.feature >= maxSlabFeat {
			return nil, fmt.Errorf("%w: stage %d feature %d", ErrSlab, i, st.feature)
		}
		// evalStage indexes segs[off+n-1] unconditionally, so an empty
		// stage is structurally invalid, not just useless.
		if st.n < 1 || st.off < 0 || int(st.off)+int(st.n) > nSegs {
			return nil, fmt.Errorf("%w: stage %d segments [%d,%d) out of range [0,%d)",
				ErrSlab, i, st.off, int(st.off)+int(st.n), nSegs)
		}
	}
	return c, nil
}
