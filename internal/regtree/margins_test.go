package regtree

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestPredictMarginsBitIdentical pins the explain contract for the
// piecewise-linear booster: one margin per stage, final bit-identical
// to Predict, including in extrapolation territory.
func TestPredictMarginsBitIdentical(t *testing.T) {
	xs, ys := gen(900, 2, func(x []float64) float64 {
		return 2*x[0] - 0.25*x[1] + 4
	})
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)

	rng := xrand.New(23)
	probes := append([][]float64(nil), xs[:150]...)
	for i := 0; i < 150; i++ {
		probes = append(probes, []float64{rng.Range(-1000, 1000), rng.Range(-100, 100)})
	}

	var buf []float64
	for i, x := range probes {
		buf = buf[:0]
		var final float64
		buf, final = c.PredictMargins(x, buf)
		want := m.Predict(x)
		if math.Float64bits(final) != math.Float64bits(want) {
			t.Fatalf("probe %d: margin final %v != Predict %v", i, final, want)
		}
		if len(buf) != c.NumStages() {
			t.Fatalf("probe %d: %d margins for %d stages", i, len(buf), c.NumStages())
		}
		if len(buf) > 0 && math.Float64bits(buf[len(buf)-1]) != math.Float64bits(want) {
			t.Fatalf("probe %d: last margin %v != Predict %v", i, buf[len(buf)-1], want)
		}
	}
}
