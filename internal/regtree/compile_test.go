package regtree

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestCompiledBitIdentical proves the flattened segment layout
// reproduces Model.Predict exactly, including linear extrapolation
// beyond the training range.
func TestCompiledBitIdentical(t *testing.T) {
	xs, ys := gen(1200, 3, func(x []float64) float64 {
		return 3*x[0] + 0.5*x[1]*x[1] + 10
	})
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(m)
	if c.NumStages() != len(m.Stages) {
		t.Fatalf("compiled %d stages, model has %d", c.NumStages(), len(m.Stages))
	}

	rng := xrand.New(17)
	probes := make([][]float64, 0, len(xs)+300)
	probes = append(probes, xs...)
	for i := 0; i < 300; i++ {
		// Extrapolation territory on both sides.
		probes = append(probes, []float64{rng.Range(-1000, 1000), rng.Range(-100, 100)})
	}

	batch := make([]float64, len(probes))
	c.PredictBatch(probes, batch)
	for i, x := range probes {
		want := m.Predict(x)
		if got := c.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("probe %d: compiled Predict %v != model %v", i, got, want)
		}
		if math.Float64bits(batch[i]) != math.Float64bits(want) {
			t.Fatalf("probe %d: PredictBatch %v != model %v", i, batch[i], want)
		}
	}
}
