// Package repro is the public API of this reproduction of
//
//	Li, König, Narasayya, Chaudhuri:
//	"Robust Estimation of Resource Consumption for SQL Queries using
//	Statistical Techniques", PVLDB 5(11), 2012.
//
// It exposes the paper's estimation framework end to end:
//
//   - generating the evaluation workloads over synthetic skewed data,
//   - executing them on the query-engine simulator to obtain
//     per-operator CPU/I/O measurements,
//   - training the SCALING estimator (MART + scaling functions, §6) and
//     the baselines, and
//   - estimating resources for new plans at query, pipeline and
//     operator granularity.
//
// The heavy lifting lives in the internal packages; this package wires
// them together behind a small, stable surface. See the examples/
// directory for runnable end-to-end usage.
package repro

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/feedback"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Re-exported plan types: users build or inspect physical plans through
// these.
type (
	// Plan is a physical query plan.
	Plan = plan.Plan
	// Node is one physical operator.
	Node = plan.Node
	// Resources is a (CPU ms, logical I/O) pair.
	Resources = plan.Resources
	// Pipeline is a maximal set of concurrently executing operators.
	Pipeline = plan.Pipeline
	// Query is a generated workload entry.
	Query = workload.Query
)

// Resource selects the predicted resource type.
type Resource = plan.ResourceKind

// The two resource types the paper models.
const (
	CPUTime   = plan.CPUTime
	LogicalIO = plan.LogicalIO
)

// AllResources lists every resource kind, in declaration order — the
// multi-resource request set meaning "everything".
func AllResources() []Resource { return plan.ResourceKinds() }

// WorkloadOptions controls synthetic workload generation.
type WorkloadOptions struct {
	// Schema is one of "tpch", "tpcds", "real1", "real2".
	Schema string
	// N is the number of queries.
	N int
	// ScaleFactors are drawn uniformly per query (default {1..10}).
	ScaleFactors []float64
	// Skew is the Zipf exponent of the data (default 2, the paper's
	// high-skew setting).
	Skew float64
	// Seed drives all randomness.
	Seed uint64
}

// GenerateWorkload builds a query workload over the requested schema.
// The plans carry true and optimizer-estimated cardinalities but no
// measurements; run them with Execute.
func GenerateWorkload(opts WorkloadOptions) ([]*Query, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("repro: workload size %d", opts.N)
	}
	cfg := workload.DefaultConfig()
	cfg.N = opts.N
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Skew > 0 {
		cfg.Z = opts.Skew
	}
	if len(opts.ScaleFactors) > 0 {
		cfg.SFs = opts.ScaleFactors
	}
	switch opts.Schema {
	case "", "tpch":
		return workload.GenTPCH(cfg), nil
	case "tpcds":
		return workload.GenGeneric("tpcds", cfg, 2, 5), nil
	case "real1":
		return workload.GenGeneric("real1", cfg, 4, 7), nil
	case "real2":
		return workload.GenGeneric("real2", cfg, 8, 11), nil
	}
	return nil, fmt.Errorf("repro: unknown schema %q", opts.Schema)
}

// Execute runs the queries on the engine simulator, filling in actual
// per-operator resource usage, and returns the per-query totals.
func Execute(queries []*Query) []Resources {
	eng := engine.New(nil)
	out := make([]Resources, len(queries))
	for i, q := range queries {
		out[i] = eng.Run(q.Plan)
	}
	return out
}

// TrainOptions controls estimator training.
type TrainOptions struct {
	// Resource to predict (CPUTime or LogicalIO).
	Resource Resource
	// UseEstimatedFeatures trains on optimizer-estimated cardinalities
	// instead of exact ones (§7.1.2 mode).
	UseEstimatedFeatures bool
	// BoostingIterations for the MART models (default 1000, the paper's
	// setting; accuracy saturates much earlier on simulated data).
	BoostingIterations int
	// DisableScaling reduces the estimator to the plain MART baseline.
	DisableScaling bool
	// SkipScaleSelection skips the §6.2 sweep experiments and uses
	// linear scaling everywhere (faster training, slightly less accurate
	// extrapolation for sorts and nested loops).
	SkipScaleSelection bool
	// BaselineProbe stamps the model's drift-detection baseline from an
	// out-of-sample probe: a throwaway model is trained on 4/5 of the
	// plans and evaluated on the held-out 1/5 (roughly doubling training
	// time). Without it the baseline is the cheap in-sample error, which
	// understates real error and makes the feedback loop's drift
	// detector more sensitive — enable this for models that will serve
	// with the feedback loop attached (resserve -bootstrap does).
	BaselineProbe bool
	// Workers bounds the training worker pool: the independent
	// (operator, resource, candidate scale-set) MART fits fan out
	// across it, with spare workers flowing down into the tree-level
	// parallelism inside each fit. 0 (the default) uses GOMAXPROCS; 1
	// trains sequentially on the calling goroutine. Trained models are
	// bit-identical at any worker count — parallelism moves wall-clock,
	// never predictions.
	Workers int
}

// Estimator predicts the resource consumption of query plans.
type Estimator struct {
	inner *core.Estimator
}

// Train fits an estimator on executed training queries (run them with
// Execute first). Training runs on the parallel pipeline — see
// TrainOptions.Workers — and delegates to TrainSet with a single
// resource.
func Train(queries []*Query, opts TrainOptions) (*Estimator, error) {
	ests, err := TrainSet(queries, opts, opts.Resource)
	if err != nil {
		return nil, err
	}
	return ests[0], nil
}

// TrainSet trains one estimator per requested resource from the same
// executed queries in a single parallel pass: every (resource ×
// operator × candidate scale-set) fit is an independent job on one
// bounded worker pool, so a CPU+I/O bootstrap saturates the machine
// instead of training the two models back to back (cmd/resserve
// -bootstrap uses this). opts.Resource is ignored; per-resource results
// are bit-identical to separate Train calls with the same options.
func TrainSet(queries []*Query, opts TrainOptions, resources ...Resource) ([]*Estimator, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("repro: no training queries")
	}
	if len(resources) == 0 {
		return nil, fmt.Errorf("repro: no resources to train")
	}
	plans := make([]*plan.Plan, len(queries))
	for i, q := range queries {
		if q.Plan.TotalActual().CPU == 0 && q.Plan.TotalActual().IO == 0 {
			return nil, fmt.Errorf("repro: query %d not executed; call Execute first", i)
		}
		plans[i] = q.Plan
	}
	cfg := core.DefaultConfig()
	if opts.BoostingIterations > 0 {
		cfg.Mart.Iterations = opts.BoostingIterations
	}
	if opts.UseEstimatedFeatures {
		cfg.Mode = features.Estimated
	}
	cfg.DisableScaling = opts.DisableScaling
	cfg.Workers = opts.Workers
	table := core.NewScaleTable()
	if !opts.SkipScaleSelection && !opts.DisableScaling {
		eng := engine.New(nil)
		b := workload.NewBuilder(workload.DBFor("tpch", 2, 1), 1)
		table = core.SelectScaleFunctions(eng, b)
		table.MirrorScanKinds()
	}
	inner, err := core.TrainSet(plans, resources, table, cfg)
	if err != nil {
		return nil, err
	}
	// Stamp the drift-detection baselines: they persist with the models
	// and the feedback loop compares production errors against them. The
	// probe (see TrainOptions.BaselineProbe) measures out-of-sample error
	// with throwaway 4/5 models — one more parallel pass covering every
	// resource — while the returned estimators still train on every plan.
	const probeFold = 5
	var probes map[plan.ResourceKind]*core.Estimator
	var probeHold []*plan.Plan
	if opts.BaselineProbe && len(plans) >= 2*probeFold {
		var probeTrain []*plan.Plan
		for i, p := range plans {
			if i%probeFold == probeFold-1 {
				probeHold = append(probeHold, p)
			} else {
				probeTrain = append(probeTrain, p)
			}
		}
		if ps, err := core.TrainSet(probeTrain, resources, table, cfg); err == nil {
			probes = ps
		}
	}
	out := make([]*Estimator, len(resources))
	for i, r := range resources {
		e := inner[r]
		if probe := probes[r]; probe != nil {
			b := probe.EvalPlans(probeHold)
			e.Baseline = &b
		}
		if e.Baseline == nil {
			e.SetBaseline(plans)
		}
		out[i] = &Estimator{inner: e}
	}
	return out, nil
}

// Resource returns the resource type the estimator predicts.
func (e *Estimator) Resource() Resource { return e.inner.Resource }

// EstimatePlan predicts the plan's total resource usage.
func (e *Estimator) EstimatePlan(p *Plan) float64 { return e.inner.PredictPlan(p) }

// EstimateQuery predicts a workload query's total resource usage.
func (e *Estimator) EstimateQuery(q *Query) float64 { return e.inner.PredictPlan(q.Plan) }

// PlanExplanation is the per-operator breakdown of one plan estimate:
// which model scored each operator, the scaled feature vector it saw,
// and the per-tree margins that sum to the operator estimate. Its
// String method renders a human-readable report.
type PlanExplanation = core.Explanation

// Explain predicts the plan's total resource usage and reports how the
// estimate was assembled, operator by operator. The explanation's Total
// is bit-identical to EstimatePlan on the same plan — explaining never
// perturbs the prediction. It costs one extra model-evaluation pass, so
// keep it off hot paths.
func (e *Estimator) Explain(p *Plan) *PlanExplanation { return e.inner.Explain(p) }

// EstimateOperator predicts a single operator's resource usage. parent
// may be nil for the root.
func (e *Estimator) EstimateOperator(n *Node, parent *Node) float64 {
	return e.inner.PredictNode(n, parent)
}

// EstimatePipelines predicts per-pipeline usage, parallel to
// p.Pipelines() — the granularity relevant for scheduling (§5.2).
func (e *Estimator) EstimatePipelines(p *Plan) []float64 {
	return e.inner.PredictPipelines(p)
}

// EstimatePlans predicts the total resource usage of a whole plan batch
// in one pass over the batched hot path: features are extracted into a
// flat buffer, nodes are grouped by operator and evaluated on the
// compiled (cache-friendly, flattened) tree layout. The result is
// parallel to plans, and every total is bit-identical to EstimatePlan
// on the same plan — batching changes throughput, never predictions.
func (e *Estimator) EstimatePlans(plans []*Plan) []float64 {
	return e.inner.PredictPlans(plans)
}

// EstimateQueries predicts the total resource usage of workload
// queries through the same batched pass as EstimatePlans.
func (e *Estimator) EstimateQueries(qs []*Query) []float64 {
	plans := make([]*Plan, len(qs))
	for i, q := range qs {
		plans[i] = q.Plan
	}
	return e.inner.PredictPlans(plans)
}

// --- Multi-resource estimation ---------------------------------------
//
// The paper trains independent models per resource; an EstimatorSet
// bundles one estimator per resource so a plan's features are
// extracted once and fanned out across every member — per-resource
// results bit-identical to the single estimators, at a fraction of the
// cost of sequential calls.

// EstimatorSet predicts several resources from one feature-extraction
// pass.
type EstimatorSet struct {
	inner *core.EstimatorSet
}

// NewEstimatorSet bundles estimators (at most one per resource, all
// trained with the same feature mode) into a multi-resource set.
func NewEstimatorSet(ests ...*Estimator) (*EstimatorSet, error) {
	inner := make([]*core.Estimator, len(ests))
	for i, e := range ests {
		if e == nil {
			return nil, fmt.Errorf("repro: nil estimator in set")
		}
		inner[i] = e.inner
	}
	set, err := core.NewEstimatorSet(inner...)
	if err != nil {
		return nil, err
	}
	return &EstimatorSet{inner: set}, nil
}

// Resources lists the resource kinds the set predicts.
func (s *EstimatorSet) Resources() []Resource { return s.inner.Resources() }

// Estimator returns the member predicting r, or nil.
func (s *EstimatorSet) Estimator(r Resource) *Estimator {
	inner := s.inner.Estimator(r)
	if inner == nil {
		return nil
	}
	return &Estimator{inner: inner}
}

// EstimatePlanAll predicts the plan's total usage of every resource in
// the set in one pass.
func (s *EstimatorSet) EstimatePlanAll(p *Plan) Resources {
	return s.inner.PredictPlanAll(p)
}

// EstimatePlansAll predicts plan-level usage for a whole batch across
// every resource in the set: one batched feature extraction, one
// fan-out over the compiled tree layouts. The result is parallel to
// plans.
func (s *EstimatorSet) EstimatePlansAll(plans []*Plan) []Resources {
	return s.inner.PredictPlansAll(plans)
}

// EstimateQueriesAll predicts workload queries through the same
// batched multi-resource pass as EstimatePlansAll.
func (s *EstimatorSet) EstimateQueriesAll(qs []*Query) []Resources {
	plans := make([]*Plan, len(qs))
	for i, q := range qs {
		plans[i] = q.Plan
	}
	return s.inner.PredictPlansAll(plans)
}

// Save writes the trained model set to w. The format embeds the compact
// per-tree binary encoding of §7.3.
func (e *Estimator) Save(w io.Writer) error { return e.inner.Save(w) }

// SaveFile writes the model set to a file.
func (e *Estimator) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.inner.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model set written by Save.
func Load(r io.Reader) (*Estimator, error) {
	inner, err := core.LoadEstimator(r)
	if err != nil {
		return nil, err
	}
	return &Estimator{inner: inner}, nil
}

// LoadFile reads a model set from a file.
func LoadFile(path string) (*Estimator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// --- Plan wire codec -------------------------------------------------
//
// External clients submit plans to the estimation service as JSON
// rather than constructing Go structs. The encoding is deterministic
// and versioned; see internal/plan's codec for the format.

// EncodePlanJSON renders a plan in the wire format.
func EncodePlanJSON(p *Plan) ([]byte, error) { return plan.EncodeJSON(p) }

// DecodePlanJSON parses and validates a wire-format plan.
func DecodePlanJSON(data []byte) (*Plan, error) { return plan.DecodeJSON(data) }

// --- Serving ---------------------------------------------------------
//
// The serving API turns trained estimators into a concurrent service:
// models are published into a registry (hot-swappable at runtime),
// per-operator predictions are memoized in a sharded LRU cache, and
// requests run on a bounded worker pool with per-request deadlines.
// cmd/resserve exposes the same service over HTTP.

// Serving types, re-exported like the plan types above.
type (
	// Service is the concurrent estimation service.
	Service = serve.Service
	// ServeOptions configures cache size, worker pool and deadlines.
	ServeOptions = serve.Options
	// EstimateRequest selects a model and carries the plan to estimate.
	EstimateRequest = serve.Request
	// EstimateResponse carries query/pipeline/operator predictions.
	EstimateResponse = serve.Response
	// BatchEstimateRequest carries a whole plan batch for one model; the
	// service runs it as a single worker-pool job with one cache
	// multi-get and the batched prediction hot path (Service.
	// EstimateBatch, POST /estimate/batch on the HTTP surface).
	BatchEstimateRequest = serve.BatchRequest
	// BatchEstimateResponse carries per-plan predictions, parallel to
	// the request's Plans, plus batch-level cache counters.
	BatchEstimateResponse = serve.BatchResponse
	// PlanEstimate is one plan's predictions within a batch response.
	PlanEstimate = serve.PlanEstimate
	// ModelInfo describes a published model version.
	ModelInfo = serve.ModelInfo
	// LatencySummary is a latency distribution snapshot (count, mean,
	// p50/p90/p99, max) from the service's telemetry histograms —
	// returned by Service.RequestLatencies and Service.StageLatencies.
	LatencySummary = obs.Summary
	// MetricsRegistry is the Prometheus-text metrics registry behind a
	// service's GET /metrics (Service.Obs); additional collectors — e.g.
	// runtime gauges on a debug listener — can be registered on it.
	MetricsRegistry = obs.Registry
)

// NewService starts an estimation service and its worker pool. Callers
// should Close it when done.
//
// The service is instrumented end to end (see README "Observability"):
// per-endpoint and per-stage latency histograms, slow-request traces
// through ServeOptions.Logger/SlowTrace, and Prometheus text exposition
// on GET /metrics content-negotiated alongside the legacy JSON
// snapshot. ServeOptions.DisableTelemetry switches the stage timing
// off; the plain counters always run.
func NewService(opts ServeOptions) *Service { return serve.New(opts) }

// --- Streaming transport ---------------------------------------------
//
// The streaming transport serves estimates over persistent framed TCP
// connections: many requests interleave in flight on one connection,
// and the server coalesces requests *across* connections into
// micro-batched dispatches through the same pool/cache path as HTTP —
// responses stay byte-identical to POST /estimate. cmd/resserve
// exposes it with -stream-addr; see README "Streaming protocol" for
// the frame layout and coalescing bounds.

// Streaming types, re-exported like the serving types above.
type (
	// StreamServer is the coalescing streaming listener.
	StreamServer = stream.Server
	// StreamServerOptions bounds micro-batching (MaxBatch, MaxWait) and
	// the per-connection idle/write deadlines.
	StreamServerOptions = stream.Options
	// StreamClient is one persistent streaming connection, safe for
	// concurrent use; responses demultiplex by sequence ID.
	StreamClient = stream.Client
	// StreamRequest is the estimate request carried in one frame. It
	// mirrors the POST /estimate body field for field.
	StreamRequest = stream.Request
	// StreamStats is a snapshot of a stream server's counters.
	StreamStats = stream.Stats
	// StreamError is a per-request server-side failure carrying the
	// same stable error code the HTTP endpoint would have returned.
	StreamError = stream.Error
)

// StartStreamServer binds addr and serves the streaming estimate
// protocol for opts.Service in the background until Close. Register
// the server's Collector on the service's MetricsRegistry to surface
// the stream series on GET /metrics.
func StartStreamServer(addr string, opts StreamServerOptions) (*StreamServer, error) {
	return stream.Start(addr, opts)
}

// DialStream opens a streaming client connection to a stream listener
// (resserve -stream-addr).
func DialStream(addr string) (*StreamClient, error) { return stream.Dial(addr) }

// --- Versioned model store -------------------------------------------
//
// The model store is the single durable source of truth for published
// models: every publish — bootstrap training, a POST /models upload, a
// feedback-loop retrain — persists one atomic snapshot (model files +
// checksummed JSON manifest) per schema, and the registry restores the
// latest snapshots at boot and rolls back through snapshot history.

// Store types, re-exported like the serving types above.
type (
	// ModelStore is the versioned on-disk model store.
	ModelStore = store.Store
	// ModelStoreOptions configures retention, slab policy and logging.
	ModelStoreOptions = store.Options
	// ModelManifest describes one persisted snapshot.
	ModelManifest = store.Manifest
	// SlabMode selects the store's compiled-slab policy: publish-time
	// slab siblings next to each model blob, restored zero-copy via
	// mmap.
	SlabMode = store.SlabMode
)

// Slab policy values for ModelStoreOptions.Slab.
const (
	// SlabExact (default): restore from the slab's exact float64 layout,
	// bit-identical to the JSON decode path.
	SlabExact = store.SlabExact
	// SlabQuantized: prefer the slab's float32-quantized section when
	// the publish-time accuracy gate admitted one.
	SlabQuantized = store.SlabQuantized
	// SlabDisabled: write no slabs, restore via JSON only.
	SlabDisabled = store.SlabDisabled
)

// OpenModelStore opens (creating if needed) the model store rooted at
// dir, cleaning up partial publishes left by crashes.
func OpenModelStore(dir string, opts ModelStoreOptions) (*ModelStore, error) {
	return store.Open(dir, opts)
}

// AttachModelStore puts the service's registry in store-backed mode
// and restores the newest intact snapshot of every schema in the
// store: after this, every publish persists a coherent snapshot,
// rollback walks snapshot history (surviving process restarts), and
// the returned infos describe the models restored from disk.
func AttachModelStore(s *Service, st *ModelStore, logf func(format string, args ...any)) ([]ModelInfo, error) {
	s.Registry().AttachStore(st, logf)
	return s.Registry().RestoreFromStore()
}

// PublishAs is Publish with the producing subsystem recorded in the
// store manifest ("bootstrap", "upload", "retrain", ...).
func PublishAs(s *Service, schema string, e *Estimator, source string) ModelInfo {
	return s.Registry().PublishAs(schema, e.inner, source)
}

// LoadLatestEstimators loads the newest intact snapshot for schema
// from the store as a multi-resource EstimatorSet.
func LoadLatestEstimators(st *ModelStore, schema string) (*EstimatorSet, *ModelManifest, error) {
	loaded, err := st.LoadLatest(schema)
	if err != nil {
		return nil, nil, err
	}
	ests := make([]*core.Estimator, 0, len(loaded.Models))
	for _, r := range plan.ResourceKinds() {
		if e, ok := loaded.Models[r]; ok {
			ests = append(ests, e)
		}
	}
	set, err := core.NewEstimatorSet(ests...)
	if err != nil {
		return nil, nil, err
	}
	return &EstimatorSet{inner: set}, loaded.Manifest, nil
}

// SaveSnapshot persists a model set for schema directly to the store —
// the offline producer's path (e.g. restrain writing into a serving
// store), equivalent to what the serving registry does on publish.
func SaveSnapshot(st *ModelStore, schema, source string, ests ...*Estimator) (*ModelManifest, error) {
	models := make(map[Resource]*core.Estimator, len(ests))
	for _, e := range ests {
		if e == nil {
			return nil, fmt.Errorf("repro: nil estimator in snapshot")
		}
		if _, dup := models[e.inner.Resource]; dup {
			return nil, fmt.Errorf("repro: duplicate %s estimator in snapshot", e.inner.Resource)
		}
		models[e.inner.Resource] = e.inner
	}
	return st.Publish(store.Snapshot{Schema: schema, Source: source, Models: models})
}

// Publish installs a trained estimator as the current model for the
// schema (atomically replacing any prior version; in-flight requests
// finish on the version they started with). Schema "" installs the
// fallback used when a request's schema has no dedicated model.
func Publish(s *Service, schema string, e *Estimator) ModelInfo {
	return s.Registry().Publish(schema, e.inner)
}

// PublishModelFile loads a model set saved with Save/SaveFile and
// publishes it under the schema.
func PublishModelFile(s *Service, schema, path string) (ModelInfo, error) {
	return s.Registry().PublishFile(schema, path)
}

// Rollback reverts (schema, resource) to the previously published model
// version. The prior estimator comes back under a fresh version number,
// so prediction-cache entries from the rolled-back version never serve.
func Rollback(s *Service, schema string, r Resource) (ModelInfo, error) {
	return s.Registry().Rollback(schema, r)
}

// --- Online feedback loop --------------------------------------------
//
// The feedback subsystem closes the serve → observe → retrain →
// hot-swap cycle: executed plans reported back (POST /observe or
// FeedbackLoop.Observe) land in a crash-safe segmented observation log
// and per-model rolling error windows; when recent errors drift past a
// multiple of the model's training-time baseline, a background
// retrainer fits a fresh estimator to the logged observations,
// validates it on a held-out slice (rejecting candidates that do not
// beat the incumbent), and hot-swaps it into the registry.

// Feedback types, re-exported like the serving types above.
type (
	// FeedbackLoop is the online feedback controller.
	FeedbackLoop = feedback.Loop
	// FeedbackOptions configures the observation log, drift detector
	// and retrainer.
	FeedbackOptions = feedback.Options
	// Observation is one (plan, predicted, actual) triple reported by
	// the serving path.
	Observation = feedback.Observation
	// FeedbackStats is the per-route error gauge snapshot exposed
	// through Metrics.
	FeedbackStats = feedback.RouteStats
)

// NewServiceWithFeedback starts an estimation service with the online
// feedback loop attached: the loop's retrainer publishes into the
// service's registry, POST /observe ingests observations, and /metrics
// carries the per-model error gauges. Close the service first, then the
// loop (which flushes the observation log).
func NewServiceWithFeedback(opts ServeOptions, fopts FeedbackOptions) (*Service, *FeedbackLoop, error) {
	if opts.Registry == nil {
		opts.Registry = serve.NewRegistry()
	}
	if fopts.Publisher == nil {
		fopts.Publisher = opts.Registry
	}
	loop, err := feedback.New(fopts)
	if err != nil {
		return nil, nil, err
	}
	opts.Feedback = loop
	return serve.New(opts), loop, nil
}

// --- Distributed serving tier ----------------------------------------
//
// The cluster subsystem fronts N resserve replicas with a
// schema-affinity router (consistent-hash placement, version-skew
// guarded spillover, version-keyed response caching, load shedding)
// and closes the feedback loop across the fleet: replicas forward
// observation-log segments to one designated retrainer, whose
// published snapshots followers pick up from the shared model store.
// cmd/resrouter is the standalone router binary; see README
// "Distributed deployment".

// Cluster types, re-exported like the serving types above.
type (
	// Router fronts a replica fleet behind the single-node HTTP and
	// stream surfaces.
	Router = cluster.Router
	// RouterOptions configures placement, pooling, polling, caching
	// and admission bounds.
	RouterOptions = cluster.Options
	// RouterMetrics is the router's JSON metrics snapshot.
	RouterMetrics = cluster.Metrics
	// ObservationForwarder tails a replica's observation log and ships
	// segments to the fleet's designated retrainer.
	ObservationForwarder = cluster.Forwarder
	// ObservationForwarderOptions configures the forwarder's source
	// directory, target and poll interval.
	ObservationForwarderOptions = cluster.ForwarderOptions
)

// NewRouter builds a schema-affinity router over the configured
// replicas and polls their health once synchronously, so routing
// state is live on return. Close it when done.
func NewRouter(opts RouterOptions) (*Router, error) { return cluster.New(opts) }

// StartObservationForwarder starts forwarding a replica's observation
// segments to the retrainer at opts.Target (its /observe/segment
// endpoint). Close it when done; pair it with a service built by
// NewServiceWithObservationLog.
func StartObservationForwarder(opts ObservationForwarderOptions) (*ObservationForwarder, error) {
	return cluster.NewForwarder(opts)
}

// NewServiceWithObservationLog is the forwarding-replica variant of
// NewServiceWithFeedback: POST /observe lands in the local
// observation log and feeds the error gauges, but no retrainer runs —
// fopts.Publisher is deliberately left unset, because retraining is
// the designated retrainer's job and an ObservationForwarder ships
// the log there.
func NewServiceWithObservationLog(opts ServeOptions, fopts FeedbackOptions) (*Service, *FeedbackLoop, error) {
	fopts.Publisher = nil
	loop, err := feedback.New(fopts)
	if err != nil {
		return nil, nil, err
	}
	opts.Feedback = loop
	return serve.New(opts), loop, nil
}

// AttachModelStoreFollower attaches the store in follower mode: the
// registry serves the store's newest snapshots but never writes pins
// or rollback state — the store stays owned by the fleet's retrainer.
// Use SyncFromModelStore to poll for newer snapshots afterwards.
func AttachModelStoreFollower(s *Service, st *ModelStore, logf func(format string, args ...any)) ([]ModelInfo, error) {
	s.Registry().AttachStore(st, logf)
	return s.Registry().SyncFromStore()
}

// SyncFromModelStore publishes any store snapshots newer than what the
// registry currently serves — the follower's poll body. It never
// regresses a served version.
func SyncFromModelStore(s *Service) ([]ModelInfo, error) { return s.Registry().SyncFromStore() }
