// Quickstart: generate a workload, execute it on the simulator, train a
// CPU estimator, and estimate a held-out query — the minimal end-to-end
// use of the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Generate a TPC-H-like workload over skewed data (Zipf z=2)
	//    across several database scale factors.
	queries, err := repro.GenerateWorkload(repro.WorkloadOptions{
		Schema:       "tpch",
		N:            256,
		ScaleFactors: []float64{1, 2, 4, 6},
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Execute on the engine simulator: this measures per-operator CPU
	//    time and logical I/O, the training labels.
	repro.Execute(queries)

	// 3. Hold out the last 32 queries, train on the rest.
	train, test := queries[:224], queries[224:]
	estimator, err := repro.Train(train, repro.TrainOptions{
		Resource:           repro.CPUTime,
		BoostingIterations: 300,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Estimate the held-out queries before "running" them.
	fmt.Printf("%-30s %12s %12s\n", "query", "estimated", "actual")
	var within2x int
	for _, q := range test {
		pred := estimator.EstimateQuery(q)
		actual := q.Plan.TotalActual().CPU
		fmt.Printf("%-30s %10.0fms %10.0fms\n", q.Plan.Tag, pred, actual)
		if r := pred / actual; r > 0.5 && r < 2 {
			within2x++
		}
	}
	fmt.Printf("\n%d/%d estimates within 2x of the actual CPU time\n", within2x, len(test))

	// 5. Persist the model set (a few hundred KB; §7.3 of the paper).
	if err := estimator.SaveFile("cpu-model.json"); err != nil {
		log.Fatal(err)
	}
	reloaded, err := repro.LoadFile("cpu-model.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved and reloaded; sample estimate: %.0fms\n",
		reloaded.EstimateQuery(test[0]))
}
