// Robustness: the Figure 3 / Figure 6 contrast of the paper, driven
// through the public API. An estimator trained only on small databases
// (scale factors 1–4) is applied to queries on much larger ones (scale
// factors 6–10). Plain MART saturates at the largest training values and
// systematically underestimates; the SCALING estimator extrapolates via
// its scaling functions.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	small, err := repro.GenerateWorkload(repro.WorkloadOptions{
		Schema:       "tpch",
		N:            320,
		ScaleFactors: []float64{1, 2, 4},
		Seed:         23,
	})
	if err != nil {
		log.Fatal(err)
	}
	large, err := repro.GenerateWorkload(repro.WorkloadOptions{
		Schema:       "tpch",
		N:            64,
		ScaleFactors: []float64{6, 8, 10},
		Seed:         24,
	})
	if err != nil {
		log.Fatal(err)
	}
	repro.Execute(small)
	repro.Execute(large)

	mart, err := repro.Train(small, repro.TrainOptions{
		Resource: repro.CPUTime, BoostingIterations: 300, DisableScaling: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	scaling, err := repro.Train(small, repro.TrainOptions{
		Resource: repro.CPUTime, BoostingIterations: 300,
	})
	if err != nil {
		log.Fatal(err)
	}

	summarize := func(name string, est *repro.Estimator) {
		var under2x, within15 int
		var ratioSum float64
		for _, q := range large {
			pred := est.EstimateQuery(q)
			actual := q.Plan.TotalActual().CPU
			ratio := pred / actual
			ratioSum += ratio
			if ratio < 0.5 {
				under2x++
			}
			if ratio > 1/1.5 && ratio < 1.5 {
				within15++
			}
		}
		n := len(large)
		fmt.Printf("%-8s mean est/actual %.2f | >2x underestimates %2d/%d | within 1.5x %2d/%d\n",
			name, ratioSum/float64(n), under2x, n, within15, n)
	}

	fmt.Println("trained on SF 1-4, tested on SF 6-10 (CPU time):")
	summarize("MART", mart)
	summarize("SCALING", scaling)
	fmt.Println("\nMART cannot predict beyond the largest training values (Figure 3);")
	fmt.Println("the scaling functions restore accuracy on larger data (Figure 6).")
}
