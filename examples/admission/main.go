// Admission control: one of the motivating applications in §1 of the
// paper. A DBMS receiving a query must decide — before execution —
// whether it fits the available resource budget. This example compares
// admission decisions driven by a plain MART estimator against the
// robust SCALING estimator when incoming queries are much larger than
// anything seen during training: the MART estimator underestimates and
// admits queries that blow the budget.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sched"
)

func main() {
	// Train both estimators on small-scale-factor history.
	history, err := repro.GenerateWorkload(repro.WorkloadOptions{
		Schema:       "tpch",
		N:            384,
		ScaleFactors: []float64{1, 2, 4},
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	repro.Execute(history)

	scaling, err := repro.Train(history, repro.TrainOptions{
		Resource:           repro.CPUTime,
		BoostingIterations: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	martOnly, err := repro.Train(history, repro.TrainOptions{
		Resource:           repro.CPUTime,
		BoostingIterations: 300,
		DisableScaling:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Incoming ad-hoc queries run on a database that has since grown 3x
	// beyond the training data.
	incoming, err := repro.GenerateWorkload(repro.WorkloadOptions{
		Schema:       "tpch",
		N:            48,
		ScaleFactors: []float64{8, 12},
		Seed:         99,
	})
	if err != nil {
		log.Fatal(err)
	}
	repro.Execute(incoming) // ground truth for evaluating the decisions

	// Admit a query only if its predicted CPU fits the budget, using the
	// admission controller (queries run one at a time here, so each
	// admission is released before the next).
	const budgetMS = 30_000
	type outcome struct{ falseAdmits, falseRejects, correct int }
	decide := func(est *repro.Estimator) outcome {
		ctrl, err := sched.NewAdmissionController(budgetMS, 1)
		if err != nil {
			log.Fatal(err)
		}
		var o outcome
		for _, q := range incoming {
			pred := est.EstimateQuery(q)
			actual := q.Plan.TotalActual().CPU
			admit, err := ctrl.TryAdmit(q.Plan.Tag, pred)
			if err != nil {
				log.Fatal(err)
			}
			if admit {
				if err := ctrl.Release(q.Plan.Tag); err != nil {
					log.Fatal(err)
				}
			}
			fits := actual <= budgetMS
			switch {
			case admit && !fits:
				o.falseAdmits++ // budget blown: the costly mistake
			case !admit && fits:
				o.falseRejects++ // wasted capacity
			default:
				o.correct++
			}
		}
		return o
	}

	mo := decide(martOnly)
	so := decide(scaling)
	fmt.Printf("admission control with a %.0fs CPU budget, %d incoming queries\n",
		float64(budgetMS)/1000, len(incoming))
	fmt.Printf("%-10s %9s %12s %13s\n", "estimator", "correct", "false admits", "false rejects")
	fmt.Printf("%-10s %9d %12d %13d\n", "MART", mo.correct, mo.falseAdmits, mo.falseRejects)
	fmt.Printf("%-10s %9d %12d %13d\n", "SCALING", so.correct, so.falseAdmits, so.falseRejects)
	if so.falseAdmits < mo.falseAdmits {
		fmt.Println("\nSCALING avoids budget-blowing admissions that the saturating MART " +
			"model lets through (the §1.1 robustness argument).")
	}
}
