// Scheduling: the paper's second motivating application (§1, §5.2).
// Pipelines that do not execute concurrently never compete for
// resources, so a scheduler can interleave pipelines of different
// queries at finer granularity than whole queries. This example
// estimates per-pipeline CPU for a batch of queries, builds a
// precedence-respecting schedule on a simulated worker pool, and then
// replays the schedule against the actual measured costs to check how
// well the plan holds up.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sched"
)

func main() {
	queries, err := repro.GenerateWorkload(repro.WorkloadOptions{
		Schema:       "tpch",
		N:            192,
		ScaleFactors: []float64{1, 2, 4},
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	repro.Execute(queries)
	train, batch := queries[:160], queries[160:176]

	est, err := repro.Train(train, repro.TrainOptions{
		Resource:           repro.CPUTime,
		BoostingIterations: 300,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build one chain per query: its pipelines in execution order, with
	// predicted CPU costs; keep the actual costs for the replay.
	var chains []sched.Chain
	actual := map[string][]float64{}
	var wholeQuery []sched.Chain
	for _, q := range batch {
		per := est.EstimatePipelines(q.Plan)
		chains = append(chains, sched.Chain{ID: q.Plan.Tag, Costs: per})
		var acts []float64
		var total float64
		for _, pl := range q.Plan.Pipelines() {
			acts = append(acts, pl.TotalActual().CPU)
		}
		for _, v := range per {
			total += v
		}
		actual[q.Plan.Tag] = acts
		// Whole-query scheduling treats each query as one indivisible job.
		wholeQuery = append(wholeQuery, sched.Chain{ID: q.Plan.Tag, Costs: []float64{total}})
	}
	wholeActual := map[string][]float64{}
	for id, acts := range actual {
		var sum float64
		for _, v := range acts {
			sum += v
		}
		wholeActual[id] = []float64{sum}
	}

	const workers = 4
	pipePlan, err := sched.ScheduleChains(chains, workers)
	if err != nil {
		log.Fatal(err)
	}
	queryPlan, err := sched.ScheduleChains(wholeQuery, workers)
	if err != nil {
		log.Fatal(err)
	}
	pipeReal, err := sched.EvaluateSchedule(pipePlan, actual)
	if err != nil {
		log.Fatal(err)
	}
	queryReal, err := sched.EvaluateSchedule(queryPlan, wholeActual)
	if err != nil {
		log.Fatal(err)
	}

	nPipes := 0
	for _, c := range chains {
		nPipes += len(c.Costs)
	}
	fmt.Printf("batch of %d queries decomposed into %d pipelines, %d workers\n",
		len(batch), nPipes, workers)
	fmt.Printf("%-26s %14s %14s\n", "granularity", "planned (ms)", "realized (ms)")
	fmt.Printf("%-26s %14.0f %14.0f\n", "whole-query", queryPlan.Makespan, queryReal)
	fmt.Printf("%-26s %14.0f %14.0f\n", "pipeline-level", pipePlan.Makespan, pipeReal)
	fmt.Printf("\npipeline-level realized makespan is %.0f%% of whole-query\n",
		100*pipeReal/queryReal)

	// Show one query's pipeline breakdown: estimates vs actuals.
	q := batch[0]
	fmt.Printf("\npipeline breakdown of %s:\n", q.Plan.Tag)
	for i, cpu := range est.EstimatePipelines(q.Plan) {
		pl := q.Plan.Pipelines()[i]
		fmt.Printf("  pipeline %d (%d operators): estimated %.0f ms, actual %.0f ms\n",
			i, len(pl.Nodes), cpu, pl.TotalActual().CPU)
	}
}
